//! Log backends: where the framed bytes actually live.
//!
//! The [`Wal`] trait is deliberately narrow — append to the current segment,
//! sync, rotate, read segments back, keep one snapshot blob — so that the
//! framing, CRC and replay logic in [`RiStore`](crate::RiStore) is written
//! once and exercised identically by both backends:
//!
//! * [`MemLog`] — byte-for-byte the same segment streams, held in memory.
//!   This is what deterministic tests (and the corruption corpus, which
//!   needs to flip bits in "storage") run against.
//! * [`FileLog`] — one file per segment (`wal-<index>.log`) plus
//!   `snapshot.bin` in a directory; snapshot writes go through a temp file
//!   and an atomic rename, appends become durable via `fsync` under the
//!   store's [`FsyncPolicy`](crate::FsyncPolicy).

use crate::StoreError;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic + version prefix of every log segment. A segment that does not
/// start with these bytes is not scanned at all.
pub const SEGMENT_HEADER: [u8; 5] = *b"OMWL\x01";

/// Name of the snapshot blob inside a [`FileLog`] directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context}: {e}"))
}

/// A segmented, append-only byte store with one snapshot slot.
///
/// All framing lives above this trait: a backend never interprets the bytes
/// it is handed beyond the [`SEGMENT_HEADER`] it writes when it opens a new
/// segment.
pub trait Wal: Send + Sync {
    /// Appends raw bytes to the current segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot take the bytes.
    fn append(&self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Forces appended bytes onto durable media (fsync for files, a no-op
    /// for memory).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the sync fails.
    fn sync(&self) -> Result<(), StoreError>;

    /// The index of the segment currently being appended to.
    fn current_segment(&self) -> u64;

    /// Bytes currently in the active segment (header included).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot report it.
    fn segment_len(&self) -> Result<u64, StoreError>;

    /// Closes the current segment and opens a fresh one, returning its
    /// index.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the new segment cannot be created.
    fn rotate(&self) -> Result<u64, StoreError>;

    /// Shrinks segment `index` to its first `len` bytes — how a reopen
    /// amputates a torn tail so later appends never sit behind garbage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be truncated.
    fn truncate_segment(&self, index: u64, len: u64) -> Result<(), StoreError>;

    /// All segment indices, ascending.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the backend cannot enumerate them.
    fn segments(&self) -> Result<Vec<u64>, StoreError>;

    /// Reads one segment back in full.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the segment cannot be read.
    fn read_segment(&self, index: u64) -> Result<Vec<u8>, StoreError>;

    /// Deletes every segment with an index below `index` (compaction after
    /// a snapshot).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when deletion fails.
    fn remove_segments_before(&self, index: u64) -> Result<(), StoreError>;

    /// Replaces the snapshot blob durably.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the snapshot cannot be persisted.
    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Reads the snapshot blob, `None` when none was ever written.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the read fails.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StoreError>;
}

// ----- in-memory backend -----------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    segments: BTreeMap<u64, Vec<u8>>,
    snapshot: Option<Vec<u8>>,
}

/// An in-memory [`Wal`]: identical segment streams to [`FileLog`], no disk.
///
/// Besides powering deterministic tests, `MemLog` exposes what a filesystem
/// would never let a test do safely: [`MemLog::mutate_segment`] and
/// [`MemLog::truncate_tail`] corrupt "storage" in place, which is how the
/// torn-write/bit-flip recovery corpus simulates power loss mid-write.
#[derive(Debug, Default)]
pub struct MemLog {
    inner: Mutex<MemInner>,
}

impl MemLog {
    /// Creates an empty in-memory log with one open segment.
    pub fn new() -> Self {
        let log = MemLog {
            inner: Mutex::new(MemInner::default()),
        };
        log.inner
            .lock()
            .expect("memlog lock")
            .segments
            .insert(1, SEGMENT_HEADER.to_vec());
        log
    }

    /// Raw bytes of every segment, ascending by index (test hook).
    pub fn raw_segments(&self) -> Vec<(u64, Vec<u8>)> {
        let inner = self.inner.lock().expect("memlog lock");
        inner
            .segments
            .iter()
            .map(|(i, b)| (*i, b.clone()))
            .collect()
    }

    /// Runs `f` over the raw bytes of segment `index` (test hook for
    /// simulating bit rot and torn writes).
    pub fn mutate_segment(&self, index: u64, f: impl FnOnce(&mut Vec<u8>)) {
        let mut inner = self.inner.lock().expect("memlog lock");
        if let Some(bytes) = inner.segments.get_mut(&index) {
            f(bytes);
        }
    }

    /// Drops the last `n` bytes of the newest segment — a torn final write.
    pub fn truncate_tail(&self, n: usize) {
        let mut inner = self.inner.lock().expect("memlog lock");
        if let Some(bytes) = inner.segments.values_mut().next_back() {
            let keep = bytes.len().saturating_sub(n);
            bytes.truncate(keep);
        }
    }

    /// Runs `f` over the raw snapshot blob, if one exists (test hook).
    pub fn mutate_snapshot(&self, f: impl FnOnce(&mut Vec<u8>)) {
        let mut inner = self.inner.lock().expect("memlog lock");
        if let Some(bytes) = inner.snapshot.as_mut() {
            f(bytes);
        }
    }
}

impl Wal for MemLog {
    fn append(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("memlog lock");
        inner
            .segments
            .values_mut()
            .next_back()
            .expect("memlog always has a segment")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn current_segment(&self) -> u64 {
        let inner = self.inner.lock().expect("memlog lock");
        *inner.segments.keys().next_back().expect("segment")
    }

    fn segment_len(&self) -> Result<u64, StoreError> {
        let inner = self.inner.lock().expect("memlog lock");
        Ok(inner.segments.values().next_back().expect("segment").len() as u64)
    }

    fn rotate(&self) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().expect("memlog lock");
        let next = inner.segments.keys().next_back().expect("segment") + 1;
        inner.segments.insert(next, SEGMENT_HEADER.to_vec());
        Ok(next)
    }

    fn truncate_segment(&self, index: u64, len: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("memlog lock");
        match inner.segments.get_mut(&index) {
            Some(bytes) => {
                bytes.truncate(len as usize);
                Ok(())
            }
            None => Err(StoreError::Io(format!("no segment {index}"))),
        }
    }

    fn segments(&self) -> Result<Vec<u64>, StoreError> {
        let inner = self.inner.lock().expect("memlog lock");
        Ok(inner.segments.keys().copied().collect())
    }

    fn read_segment(&self, index: u64) -> Result<Vec<u8>, StoreError> {
        let inner = self.inner.lock().expect("memlog lock");
        inner
            .segments
            .get(&index)
            .cloned()
            .ok_or_else(|| StoreError::Io(format!("no segment {index}")))
    }

    fn remove_segments_before(&self, index: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("memlog lock");
        inner.segments.retain(|i, _| *i >= index);
        Ok(())
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StoreError> {
        self.inner.lock().expect("memlog lock").snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.inner.lock().expect("memlog lock").snapshot.clone())
    }
}

// ----- file backend ----------------------------------------------------------

#[derive(Debug)]
struct FileInner {
    current: u64,
    file: File,
}

/// A directory-backed [`Wal`]: `wal-<index>.log` segments plus
/// `snapshot.bin`, written with the usual crash-safety choreography
/// (append + fsync, snapshot via temp file + atomic rename).
#[derive(Debug)]
pub struct FileLog {
    dir: PathBuf,
    inner: Mutex<FileInner>,
}

impl FileLog {
    /// Opens (or creates) a log directory. Appending continues into the
    /// highest-numbered existing segment.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory or a segment cannot be opened.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create log dir", e))?;
        let mut indices = Self::scan_segments(&dir)?;
        let current = match indices.pop() {
            Some(last) => last,
            None => {
                Self::create_segment(&dir, 1)?;
                1
            }
        };
        let file = OpenOptions::new()
            .append(true)
            .open(Self::segment_path(&dir, current))
            .map_err(|e| io_err("open current segment", e))?;
        Ok(FileLog {
            dir,
            inner: Mutex::new(FileInner { current, file }),
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(dir: &Path, index: u64) -> PathBuf {
        dir.join(format!("wal-{index:08}.log"))
    }

    fn scan_segments(dir: &Path) -> Result<Vec<u64>, StoreError> {
        let mut indices = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err("read log dir", e))? {
            let entry = entry.map_err(|e| io_err("read log dir entry", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(index) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                indices.push(index);
            }
        }
        indices.sort_unstable();
        Ok(indices)
    }

    fn create_segment(dir: &Path, index: u64) -> Result<File, StoreError> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(Self::segment_path(dir, index))
            .map_err(|e| io_err("create segment", e))?;
        file.write_all(&SEGMENT_HEADER)
            .map_err(|e| io_err("write segment header", e))?;
        file.sync_data()
            .map_err(|e| io_err("sync new segment", e))?;
        Self::sync_dir(dir);
        Ok(file)
    }

    /// Best-effort directory fsync so renames/creations survive power loss
    /// (directories are not openable as files on every platform).
    fn sync_dir(dir: &Path) {
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_all();
        }
    }
}

impl Wal for FileLog {
    fn append(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("filelog lock");
        inner.file.write_all(bytes).map_err(|e| io_err("append", e))
    }

    fn sync(&self) -> Result<(), StoreError> {
        let inner = self.inner.lock().expect("filelog lock");
        inner.file.sync_data().map_err(|e| io_err("fsync", e))
    }

    fn current_segment(&self) -> u64 {
        self.inner.lock().expect("filelog lock").current
    }

    fn segment_len(&self) -> Result<u64, StoreError> {
        let inner = self.inner.lock().expect("filelog lock");
        inner
            .file
            .metadata()
            .map(|m| m.len())
            .map_err(|e| io_err("segment metadata", e))
    }

    fn rotate(&self) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock().expect("filelog lock");
        inner.file.sync_data().map_err(|e| io_err("fsync", e))?;
        let next = inner.current + 1;
        inner.file = Self::create_segment(&self.dir, next)?;
        inner.current = next;
        Ok(next)
    }

    fn truncate_segment(&self, index: u64, len: u64) -> Result<(), StoreError> {
        // Hold the lock so the truncation cannot interleave with appends;
        // the append handle is in O_APPEND mode, so it keeps writing at
        // the (new) end of file afterwards.
        let inner = self.inner.lock().expect("filelog lock");
        let file = OpenOptions::new()
            .write(true)
            .open(Self::segment_path(&self.dir, index))
            .map_err(|e| io_err("open segment for truncate", e))?;
        file.set_len(len)
            .map_err(|e| io_err("truncate segment", e))?;
        file.sync_all()
            .map_err(|e| io_err("sync truncated segment", e))?;
        drop(inner);
        Ok(())
    }

    fn segments(&self) -> Result<Vec<u64>, StoreError> {
        Self::scan_segments(&self.dir)
    }

    fn read_segment(&self, index: u64) -> Result<Vec<u8>, StoreError> {
        fs::read(Self::segment_path(&self.dir, index)).map_err(|e| io_err("read segment", e))
    }

    fn remove_segments_before(&self, index: u64) -> Result<(), StoreError> {
        for old in Self::scan_segments(&self.dir)? {
            if old < index {
                fs::remove_file(Self::segment_path(&self.dir, old))
                    .map_err(|e| io_err("remove compacted segment", e))?;
            }
        }
        Self::sync_dir(&self.dir);
        Ok(())
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join("snapshot.tmp");
        let path = self.dir.join(SNAPSHOT_FILE);
        let mut file = File::create(&tmp).map_err(|e| io_err("create snapshot.tmp", e))?;
        file.write_all(bytes)
            .map_err(|e| io_err("write snapshot", e))?;
        file.sync_all().map_err(|e| io_err("sync snapshot", e))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(|e| io_err("install snapshot", e))?;
        Self::sync_dir(&self.dir);
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read snapshot", e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(log: &dyn Wal) {
        assert_eq!(log.current_segment(), 1);
        assert_eq!(log.segment_len().unwrap(), SEGMENT_HEADER.len() as u64);
        log.append(b"abc").unwrap();
        log.append(b"def").unwrap();
        log.sync().unwrap();
        assert_eq!(
            log.read_segment(1).unwrap(),
            [&SEGMENT_HEADER[..], b"abcdef"].concat()
        );
        assert_eq!(log.rotate().unwrap(), 2);
        log.append(b"xyz").unwrap();
        assert_eq!(log.segments().unwrap(), vec![1, 2]);
        assert!(log.read_snapshot().unwrap().is_none());
        log.write_snapshot(b"snap").unwrap();
        assert_eq!(log.read_snapshot().unwrap().as_deref(), Some(&b"snap"[..]));
        log.remove_segments_before(2).unwrap();
        assert_eq!(log.segments().unwrap(), vec![2]);
        assert_eq!(
            log.read_segment(2).unwrap(),
            [&SEGMENT_HEADER[..], b"xyz"].concat()
        );
        assert!(log.read_segment(1).is_err());
        log.truncate_segment(2, (SEGMENT_HEADER.len() + 1) as u64)
            .unwrap();
        assert_eq!(
            log.read_segment(2).unwrap(),
            [&SEGMENT_HEADER[..], b"x"].concat()
        );
        log.append(b"YZ").unwrap();
        assert_eq!(
            log.read_segment(2).unwrap(),
            [&SEGMENT_HEADER[..], b"xYZ"].concat(),
            "appends continue at the truncated end"
        );
    }

    #[test]
    fn memlog_contract() {
        exercise(&MemLog::new());
    }

    #[test]
    fn filelog_contract_and_reopen() {
        let dir = std::env::temp_dir().join(format!("oma-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let log = FileLog::open(&dir).unwrap();
            exercise(&log);
        }
        // Re-opening continues in the highest surviving segment.
        let log = FileLog::open(&dir).unwrap();
        assert_eq!(log.current_segment(), 2);
        log.append(b"!").unwrap();
        assert_eq!(
            log.read_segment(2).unwrap(),
            [&SEGMENT_HEADER[..], b"xYZ!"].concat()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memlog_corruption_hooks() {
        let log = MemLog::new();
        log.append(b"0123456789").unwrap();
        log.truncate_tail(4);
        assert_eq!(
            log.read_segment(1).unwrap(),
            [&SEGMENT_HEADER[..], b"012345"].concat()
        );
        log.mutate_segment(1, |bytes| bytes[SEGMENT_HEADER.len()] ^= 0xFF);
        assert_ne!(log.read_segment(1).unwrap()[SEGMENT_HEADER.len()], b'0');
    }
}
