//! The mostly-idle fleet scenario: tens of thousands of parked handsets,
//! a trickle of real acquisitions.
//!
//! [`run_fleet_tcp`](crate::run_fleet_tcp) models connection *churn* —
//! every device connects, does its whole life-cycle, and hangs up. A real
//! rights-issuer deployment looks nothing like that: almost every
//! connected handset is idle almost all the time, and acquisitions arrive
//! sparsely and randomly. A thread-per-connection core cannot hold that
//! shape — each parked socket pins a worker thread, so `workers` parked
//! devices starve everyone else (the PR-6 starvation bug). The readiness
//! event loop exists precisely for this population, so the scenario binds
//! [`RoapEventServer`] unconditionally.
//!
//! [`run_idle_fleet`] runs the whole scenario in one process;
//! [`drive_idle_clients`] is the client half on its own, taking a device
//! index range so a multi-process harness (see `examples/idle_fleet.rs`)
//! can split 10k+ connections across child processes and stay inside the
//! per-process file-descriptor limit.
//!
//! Determinism is preserved end to end: arrival times are sampled from a
//! seeded exponential (Poisson process) stream, active devices are chosen
//! by a fixed stride, and every active device's
//! [`DeviceOutcome`] is checked byte-for-byte against a fresh in-process
//! reference drive before it is reported.

use crate::{
    build_world, device_pool, drive_device, drive_device_via, now, DeviceOutcome, FleetSpec,
};
use oma_drm::client::RoapClient;
use oma_drm::roap::DeviceHello;
use oma_drm::DrmError;
use oma_net::{
    MetricsSnapshot, RoapEventServer, ServerConfig, TcpTransport, DEFAULT_FRAME_TIMEOUT,
};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::net::SocketAddr;
use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Extra connection headroom the server keeps beyond the parked fleet, so
/// reference clients and stragglers are never shed.
const CAP_HEADROOM: usize = 64;

/// Parameters of one mostly-idle fleet scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleFleetSpec {
    /// The underlying fleet: `fleet.devices` is the number of *parked*
    /// connections; `fleet.workers` is deliberately tiny to prove the
    /// event loop's concurrency does not depend on it.
    pub fleet: FleetSpec,
    /// How many of the parked devices wake up and run a full
    /// registration-and-acquisition life-cycle.
    pub active: usize,
    /// Mean gap between consecutive wake-ups (the Poisson process rate is
    /// `1 / mean_interarrival`).
    pub mean_interarrival: Duration,
    /// How long the parked connections stay up after the last acquisition
    /// finished, proving the idle population survives the active burst.
    pub hold: Duration,
    /// Client-side threads used to establish the parked connections.
    pub client_threads: usize,
}

impl IdleFleetSpec {
    /// A scenario with `devices` parked connections of which `active`
    /// wake up, 5 ms mean inter-arrival, driven by one server worker —
    /// the worst case for a thread pool, routine for the event loop.
    pub fn new(devices: usize, active: usize) -> IdleFleetSpec {
        IdleFleetSpec {
            fleet: FleetSpec {
                acquisitions_per_device: 1,
                ..FleetSpec::new(devices, 1)
            },
            active: active.min(devices),
            mean_interarrival: Duration::from_millis(5),
            hold: Duration::from_millis(50),
            client_threads: 4,
        }
    }

    /// A tier-1-sized scenario: 96 parked devices, 4 of them active.
    pub fn smoke() -> IdleFleetSpec {
        IdleFleetSpec::new(96, 4)
    }

    /// The deterministic wake-up schedule: `(device_index, offset)` pairs
    /// in arrival order. Devices are spread over the fleet by a fixed
    /// stride; offsets are a seeded Poisson arrival process (exponential
    /// gaps). Every process that shares the spec computes the same
    /// schedule, which is what lets child processes run disjoint ranges
    /// of one fleet.
    pub fn arrivals(&self) -> Vec<(usize, Duration)> {
        let devices = self.fleet.devices.max(1);
        let stride = (devices / self.active.max(1)).max(1);
        let mut rng = StdRng::seed_from_u64(self.fleet.base_seed ^ 0x1d1e_f1ee);
        let mean = self.mean_interarrival.as_secs_f64();
        let mut at = Duration::ZERO;
        (0..self.active)
            .map(|k| {
                // Uniform in [0, 1) from the top 53 bits, then the inverse
                // CDF of the exponential distribution.
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                at += Duration::from_secs_f64(-(1.0 - u).ln() * mean);
                ((k * stride) % devices, at)
            })
            .collect()
    }
}

/// What one client process contributed to an idle-fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleClientReport {
    /// Parked connections this process held open.
    pub parked: usize,
    /// Outcomes of the active devices in this process's range, in arrival
    /// order. Each one was already verified byte-for-byte against a fresh
    /// in-process reference drive.
    pub outcomes: Vec<DeviceOutcome>,
}

/// The client half of the scenario: parks one connection per device in
/// `range` (each proves liveness with a `DeviceHello` round-trip), then
/// wakes the range's active devices at their scheduled Poisson arrival
/// times and drives each full life-cycle *over its parked connection*.
///
/// The function rebuilds the deterministic world (CA and catalog) from the
/// spec alone, so it works from a child process that shares nothing with
/// the server but the address — the multi-process shape the 10k example
/// needs to stay under the per-process fd limit.
///
/// Every active outcome is compared against a fresh in-process reference
/// drive of the same device; a divergence is an error, not a report.
///
/// # Errors
///
/// [`DrmError::Transport`] when connecting or speaking to the server
/// fails, or when an active device's outcome diverges from the in-process
/// reference; any [`DrmError`] a device's own life-cycle hit.
pub fn drive_idle_clients(
    addr: SocketAddr,
    spec: &IdleFleetSpec,
    range: Range<usize>,
) -> Result<IdleClientReport, DrmError> {
    drive_idle_clients_with(addr, spec, range, |_| ())
}

/// [`drive_idle_clients`] with a rendezvous hook: `parked` is called
/// exactly once, with the number of parked connections, after every
/// connection in `range` is established and before any active device
/// wakes up. A multi-process harness blocks inside the hook until all its
/// client processes report parked — which makes "the whole fleet was
/// connected simultaneously" a certainty rather than a race.
///
/// # Errors
///
/// See [`drive_idle_clients`].
pub fn drive_idle_clients_with(
    addr: SocketAddr,
    spec: &IdleFleetSpec,
    range: Range<usize>,
    parked: impl FnOnce(usize),
) -> Result<IdleClientReport, DrmError> {
    // The deterministic replica world: same CA, same catalog, and a fresh
    // reference service, all derived from the spec's seed.
    let (ca, reference, catalog) = build_world(&spec.fleet);
    let ri_id = reference.id().to_string();

    // Park one connection per device. A brand-new listener can momentarily
    // overflow its accept backlog under a connect storm, so retry briefly.
    let indices: Vec<usize> = range.clone().collect();
    let transports = device_pool(indices.len(), spec.client_threads, |k| {
        let transport = connect_with_retry(addr)?;
        let client = RoapClient::new(&transport);
        client.hello(&DeviceHello::new(&spec.fleet.device_id(indices[k])))?;
        Ok(transport)
    })?;
    parked(indices.len());

    // Wake the active devices on the shared schedule, each over its
    // already-parked connection.
    let started = Instant::now();
    let mut outcomes = Vec::new();
    for (device, offset) in spec.arrivals() {
        if !range.contains(&device) {
            continue;
        }
        let elapsed = started.elapsed();
        if offset > elapsed {
            std::thread::sleep(offset - elapsed);
        }
        let client = RoapClient::new(&transports[device - range.start]);
        let outcome = drive_device_via(&spec.fleet, device, &ri_id, &client, &ca, &catalog, None)?;
        let expected = drive_device(&spec.fleet, device, &reference, &ca, &catalog)?;
        if outcome != expected {
            return Err(DrmError::Transport(format!(
                "{}: outcome over the parked connection diverged from the in-process reference",
                outcome.device_id
            )));
        }
        outcomes.push(outcome);
    }

    // Keep the fleet parked a little longer, then hang up all at once —
    // the server absorbs `parked` EOFs in one readiness sweep.
    std::thread::sleep(spec.hold);
    drop(transports);

    Ok(IdleClientReport {
        parked: indices.len(),
        outcomes,
    })
}

fn connect_with_retry(addr: SocketAddr) -> Result<TcpTransport, DrmError> {
    let mut last = None;
    for attempt in 0..50 {
        match TcpTransport::connect(addr) {
            Ok(t) => return Ok(t),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10 * (attempt + 1).min(10)));
            }
        }
    }
    Err(last.expect("at least one connect attempt ran"))
}

/// What a whole idle-fleet run looked like, server metrics included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleFleetReport {
    /// Parked connections the run held open simultaneously.
    pub parked: usize,
    /// Verified outcomes of the active devices, in arrival order.
    pub active: Vec<DeviceOutcome>,
    /// Wall-clock time of the whole scenario.
    pub elapsed: Duration,
    /// The server's connection counters at the end of the run. The
    /// load-bearing assertion lives in `peak_active`: it must reach the
    /// parked population even though the server was configured with a
    /// single worker.
    pub metrics: MetricsSnapshot,
}

/// Builds the deterministic world for `spec` and binds a
/// [`RoapEventServer`] sized for its whole parked population: capacity for
/// every device plus headroom, an idle timeout long enough that no parked
/// connection is ever reaped, and the pinned protocol clock every fleet
/// driver uses.
///
/// [`run_idle_fleet`] calls this internally; a multi-process harness calls
/// it directly in the parent and hands the address to child processes
/// running [`drive_idle_clients`].
///
/// # Errors
///
/// [`DrmError::Transport`] when binding the loopback listener fails.
pub fn bind_idle_server(spec: &IdleFleetSpec) -> Result<RoapEventServer, DrmError> {
    let (_ca, service, _catalog) = build_world(&spec.fleet);
    RoapEventServer::bind(
        Arc::new(service),
        ServerConfig {
            workers: spec.fleet.workers,
            clock: Some(now()),
            // Parked is the point: nothing may be reaped for being quiet.
            idle_timeout: Duration::from_secs(600),
            frame_timeout: DEFAULT_FRAME_TIMEOUT,
            max_connections: spec.fleet.devices + CAP_HEADROOM,
            ..ServerConfig::default()
        },
    )
}

/// Runs the whole mostly-idle scenario in one process: binds a
/// [`RoapEventServer`], parks `spec.fleet.devices` connections, wakes
/// `spec.active` of them on the Poisson schedule, verifies every active
/// outcome against the in-process reference, and returns the report.
///
/// The server is configured with the spec's (tiny) worker count and a long
/// idle timeout; the scenario passing with `peak_active >= devices >
/// workers` is the direct demonstration that event-loop concurrency is
/// independent of the worker knob.
///
/// # Errors
///
/// See [`drive_idle_clients`]; additionally [`DrmError::Transport`] when
/// the server cannot bind.
pub fn run_idle_fleet(spec: &IdleFleetSpec) -> Result<IdleFleetReport, DrmError> {
    let server = bind_idle_server(spec)?;
    let started = Instant::now();
    let clients = drive_idle_clients(server.local_addr(), spec, 0..spec.fleet.devices)?;
    let elapsed = started.elapsed();
    let metrics = server.metrics().snapshot();
    server.shutdown();

    Ok(IdleFleetReport {
        parked: clients.parked,
        active: clients.outcomes,
        elapsed,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_increasing() {
        let spec = IdleFleetSpec::new(1000, 8);
        let a = spec.arrivals();
        let b = spec.arrivals();
        assert_eq!(a, b, "same spec, same schedule");
        assert_eq!(a.len(), 8);
        for pair in a.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "arrival offsets are cumulative");
        }
        let devices: Vec<usize> = a.iter().map(|(d, _)| *d).collect();
        assert_eq!(devices, vec![0, 125, 250, 375, 500, 625, 750, 875]);
    }

    #[test]
    fn a_different_seed_moves_the_arrivals() {
        let spec = IdleFleetSpec::new(1000, 8);
        let mut reseeded = spec.clone();
        reseeded.fleet.base_seed ^= 1;
        assert_ne!(spec.arrivals(), reseeded.arrivals());
    }

    #[test]
    fn active_count_is_clamped_to_the_fleet() {
        let spec = IdleFleetSpec::new(4, 100);
        assert_eq!(spec.active, 4);
        assert_eq!(spec.arrivals().len(), 4);
    }

    #[test]
    fn smoke_idle_fleet_parks_everyone_and_serves_the_actives() {
        let spec = IdleFleetSpec::smoke();
        let report = run_idle_fleet(&spec).expect("idle fleet");
        assert_eq!(report.parked, spec.fleet.devices);
        assert_eq!(report.active.len(), spec.active);
        // The whole parked population was connected at once, on a server
        // configured with a single worker: concurrency is the loop's, not
        // the thread pool's.
        assert!(
            report.metrics.peak_active >= spec.fleet.devices as u64,
            "peak_active {} < parked fleet {}",
            report.metrics.peak_active,
            spec.fleet.devices
        );
        assert_eq!(spec.fleet.workers, 1);
        assert_eq!(report.metrics.shed, 0, "no one was shed");
        assert_eq!(report.metrics.reaped_idle, 0, "no parked device was reaped");
    }
}
