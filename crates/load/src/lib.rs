//! A deterministic device-fleet load harness for the concurrent Rights
//! Issuer service.
//!
//! The paper prices OMA DRM 2 from the terminal's point of view; this crate
//! looks at the other end of the wire. [`run_fleet`] spawns N worker threads
//! that drive per-device-seeded [`DrmAgent`]s through full Registration →
//! Acquisition → Installation → Consumption cycles against **one shared
//! [`RiService`]**, and reports throughput (registrations/s, ROs/s) plus
//! fleet-wide per-phase operation traces and cycle totals through
//! [`oma_perf::report::FleetSummary`] — the same reporting surface as the
//! paper's Figure 6/7 tables.
//!
//! Determinism is the harness's defining property: everything a device
//! observes is derived from that device's seed, and Rights-Object ids are
//! allocated per device by the service. A multi-threaded run therefore
//! produces, device for device, **byte-identical outcomes** to a
//! single-threaded reference run — which is exactly what the concurrency
//! test suite asserts to prove the sharded service loses no updates.
//!
//! [`run_fleet_wire`] drives the same fleet **over the wire**: every ROAP
//! exchange is encoded into [`RoapPdu`] frames and pushed through
//! [`RiService::dispatch_batch`] in fleet-wide waves, measuring the
//! serialized protocol path next to the in-process numbers. Its outcomes
//! `match` the in-process driver's, frame codec and all.
//!
//! [`run_fleet_tcp`] goes the last rung down: the frames cross **real
//! loopback TCP connections** into a bounded-pool
//! [`oma_net::RoapTcpServer`], one connection per device life-cycle, and
//! the outcomes still `match` the in-process reference — transport is the
//! only thing that changed.
//!
//! # Example
//!
//! ```
//! use oma_load::{run_fleet, run_sequential, FleetSpec};
//!
//! let spec = FleetSpec::smoke();
//! let concurrent = run_fleet(&spec).unwrap();
//! let sequential = run_sequential(&spec).unwrap();
//!
//! assert_eq!(concurrent.registrations, spec.devices as u64);
//! assert!(concurrent.duplicate_ro_ids().is_empty());
//! // Per-device outcomes and aggregate traces match the sequential run.
//! assert!(concurrent.matches(&sequential));
//! println!("{}", concurrent.summary("smoke fleet"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::sha1::{sha1, DIGEST_SIZE};
use oma_drm::client::{RoapClient, RoapTransport};
use oma_drm::roap::{
    DeviceHello, RegistrationRequest, RegistrationResponse, RiHello, RoRequest, RoResponse,
    RoapError,
};
use oma_drm::wire::{self, RoapPdu};
use oma_drm::{ContentIssuer, Dcf, DrmAgent, DrmError, Permission, RiService, RightsTemplate};
use oma_net::{RoapTcpServer, ServerConfig, TcpTransport};
use oma_perf::phases::PhaseTraces;
use oma_perf::report::FleetSummary;
use oma_perf::runner::PhaseCycles;
use oma_pki::{CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The protocol timestamp every fleet interaction uses. A fixed instant
/// keeps runs reproducible; OCSP freshness and datetime constraints are
/// exercised by the dedicated adversarial suites instead.
fn now() -> Timestamp {
    Timestamp::new(1_000)
}

use oma_drm::CERT_VALIDITY_SECONDS;

/// Parameters of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of simulated devices.
    pub devices: usize,
    /// Worker threads driving the devices.
    pub workers: usize,
    /// Full Acquisition → Installation → Consumption cycles per device
    /// (registration happens once per device).
    pub acquisitions_per_device: usize,
    /// Number of distinct content items in the Rights Issuer's catalogue.
    pub contents: usize,
    /// Plaintext length of each content item in bytes.
    pub content_len: usize,
    /// RSA modulus size for the CA, the service and every device.
    pub rsa_modulus_bits: usize,
    /// Base seed; every per-device seed derives from it.
    pub base_seed: u64,
}

impl FleetSpec {
    /// A fleet of `devices` devices driven by `workers` threads, with one
    /// acquisition cycle per device over a small catalogue (test-sized
    /// 384-bit keys, 1 KiB content).
    pub fn new(devices: usize, workers: usize) -> Self {
        FleetSpec {
            devices,
            workers,
            acquisitions_per_device: 1,
            contents: 4,
            content_len: 1024,
            rsa_modulus_bits: 384,
            base_seed: 0xf1ee7,
        }
    }

    /// A minimal fleet for doctests and smoke checks.
    pub fn smoke() -> Self {
        FleetSpec {
            contents: 2,
            content_len: 256,
            ..Self::new(3, 2)
        }
    }

    /// The identifier of device `index` (fixed width, so every ROAP message
    /// a device sends has the same length regardless of its index).
    pub fn device_id(&self, index: usize) -> String {
        format!("dev-{index:05}")
    }

    /// The RNG seed of device `index`. Each device derives all of its key
    /// material and nonces from this seed alone.
    pub fn device_seed(&self, index: usize) -> u64 {
        self.base_seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Returns the spec with a different worker count (the sequential
    /// reference of a concurrent spec is `with_workers(1)`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the spec with a different number of acquisition cycles per
    /// device.
    pub fn with_acquisitions(mut self, acquisitions_per_device: usize) -> Self {
        self.acquisitions_per_device = acquisitions_per_device;
        self
    }
}

/// One catalogue entry the fleet acquires rights for.
#[derive(Debug)]
struct CatalogItem {
    content_id: String,
    dcf: Dcf,
    digest: [u8; DIGEST_SIZE],
}

/// Everything one device observed during its life-cycle. Two runs of the
/// same spec must produce equal outcomes for every device, no matter how
/// the scheduler interleaved them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOutcome {
    /// The device identifier.
    pub device_id: String,
    /// Rights Object ids the service issued to this device, in order.
    pub ro_ids: Vec<String>,
    /// SHA-1 digest of each recovered plaintext, in acquisition order.
    pub content_digests: Vec<[u8; DIGEST_SIZE]>,
    /// Per-phase operation traces of the device's crypto engine (consumption
    /// holds the sum over all accesses).
    pub traces: PhaseTraces,
    /// Per-phase cycles charged by the device's backend. The consumption
    /// field holds the sum over all of this device's accesses, so total
    /// this with [`PhaseCycles::sum`], not `total(accesses)`.
    pub cycles: PhaseCycles,
}

/// The result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the device-driving portion of the run.
    pub elapsed: Duration,
    /// Devices registered with the service when the run finished.
    pub registrations: u64,
    /// Rights Objects the service issued.
    pub rights_objects: u64,
    /// Per-device outcomes, sorted by device id.
    pub devices: Vec<DeviceOutcome>,
    /// Fleet-wide per-phase operation traces (sum over devices).
    pub traces: PhaseTraces,
    /// Fleet-wide per-phase cycle totals (sum over devices; the consumption
    /// field holds the summed figure — see [`PhaseCycles::sum`]).
    pub cycles: PhaseCycles,
}

impl FleetReport {
    /// Builds the printable summary for this run.
    pub fn summary(&self, name: &str) -> FleetSummary {
        FleetSummary {
            name: name.to_string(),
            workers: self.workers,
            devices: self.devices.len(),
            elapsed_secs: self.elapsed.as_secs_f64(),
            registrations: self.registrations,
            rights_objects: self.rights_objects,
            phase_cycles: self.cycles,
        }
    }

    /// Rights Object ids that were issued more than once across the whole
    /// fleet. Must be empty: a duplicate would mean two devices hold the
    /// same license identity.
    pub fn duplicate_ro_ids(&self) -> Vec<String> {
        let mut all: Vec<&String> = self.devices.iter().flat_map(|d| d.ro_ids.iter()).collect();
        all.sort_unstable();
        let mut duplicates = Vec::new();
        for pair in all.windows(2) {
            if pair[0] == pair[1] && duplicates.last() != Some(pair[0]) {
                duplicates.push(pair[0].clone());
            }
        }
        duplicates
    }

    /// Whether this run's deterministic observables — per-device outcomes,
    /// aggregate traces and cycles, registration and RO counts — equal
    /// `other`'s. Wall-clock time and worker count are excluded: they are
    /// the two things *allowed* to differ between a concurrent run and its
    /// sequential reference.
    pub fn matches(&self, other: &FleetReport) -> bool {
        self.devices == other.devices
            && self.traces == other.traces
            && self.cycles == other.cycles
            && self.registrations == other.registrations
            && self.rights_objects == other.rights_objects
    }
}

/// Builds the shared world: CA, service and content catalogue. Setup is
/// single-threaded and fully determined by the spec.
fn build_world(spec: &FleetSpec) -> (Mutex<CertificationAuthority>, RiService, Vec<CatalogItem>) {
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
    let service = RiService::new("ri.fleet", spec.rsa_modulus_bits, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.fleet");
    let catalog = (0..spec.contents.max(1))
        .map(|c| {
            let mut content_rng = StdRng::seed_from_u64(spec.base_seed ^ (((c as u64) << 32) | 1));
            let mut content = vec![0u8; spec.content_len];
            rand::RngCore::fill_bytes(&mut content_rng, &mut content);
            let content_id = format!("cid:fleet-{c:03}");
            let (dcf, cek) = ci.package(&content, &content_id, &mut rng);
            service.add_content(
                &content_id,
                cek,
                &dcf,
                RightsTemplate::unlimited(Permission::Play),
            );
            CatalogItem {
                content_id,
                dcf,
                digest: sha1(&content),
            }
        })
        .collect();
    (Mutex::new(ca), service, catalog)
}

/// Provisions one device: key pair, certificate from the shared CA, and an
/// agent on a fresh metered software backend. Shared by the in-process
/// driver and the wire driver, so both provision byte-identical devices.
fn provision_device(
    spec: &FleetSpec,
    index: usize,
    ca: &Mutex<CertificationAuthority>,
) -> (DrmAgent, Arc<SoftwareBackend>) {
    let mut rng = StdRng::seed_from_u64(spec.device_seed(index));
    let backend = Arc::new(SoftwareBackend::new());
    let device_id = spec.device_id(index);
    // Generate the (expensive) device key pair outside the CA lock, so
    // workers never serialise on key generation; the lock covers only the
    // certificate signature.
    let keys = RsaKeyPair::generate(spec.rsa_modulus_bits, &mut rng);
    let (certificate, ca_root) = {
        let mut ca = ca.lock().expect("ca lock");
        let certificate = ca.issue(
            &device_id,
            EntityRole::DrmAgent,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
        );
        (certificate, ca.root_certificate().clone())
    };
    let agent = DrmAgent::with_credentials(
        &device_id,
        keys,
        certificate,
        ca_root,
        Arc::<SoftwareBackend>::clone(&backend),
        &mut rng,
    );
    (agent, backend)
}

/// Drives one device through registration plus its acquisition cycles
/// against an in-process service — a [`drive_device_via`] over the
/// in-process transport, which is exactly what the legacy `*_with` agent
/// methods are.
fn drive_device(
    spec: &FleetSpec,
    index: usize,
    service: &RiService,
    ca: &Mutex<CertificationAuthority>,
    catalog: &[CatalogItem],
) -> Result<DeviceOutcome, DrmError> {
    drive_device_via(
        spec,
        index,
        service.id(),
        &RoapClient::in_proc(service),
        ca,
        catalog,
    )
}

/// Drives one device through registration plus its acquisition cycles over
/// an arbitrary ROAP transport. Every driver — in-process, loopback TCP —
/// runs this one code path, which is what makes their per-device outcomes
/// (traces, cycles, RO ids, recovered content) byte-identical.
fn drive_device_via<T: RoapTransport>(
    spec: &FleetSpec,
    index: usize,
    ri_id: &str,
    client: &RoapClient<T>,
    ca: &Mutex<CertificationAuthority>,
    catalog: &[CatalogItem],
) -> Result<DeviceOutcome, DrmError> {
    let (mut agent, backend) = provision_device(spec, index, ca);
    let device_id = spec.device_id(index);

    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    agent.engine().reset_trace();
    backend.take_charged_cycles();

    agent.register_via(client, now())?;
    traces.registration.merge(&agent.engine().take_trace());
    cycles.registration += backend.take_charged_cycles();

    let mut ro_ids = Vec::with_capacity(spec.acquisitions_per_device);
    let mut content_digests = Vec::with_capacity(spec.acquisitions_per_device);
    for k in 0..spec.acquisitions_per_device {
        let item = &catalog[(index + k) % catalog.len()];

        let response = agent.acquire_rights_via(client, ri_id, &item.content_id, now())?;
        traces.acquisition.merge(&agent.engine().take_trace());
        cycles.acquisition += backend.take_charged_cycles();

        let ro_id = agent.install_rights(&response, now())?;
        traces.installation.merge(&agent.engine().take_trace());
        cycles.installation += backend.take_charged_cycles();

        let plaintext = agent.consume(&ro_id, &item.dcf, Permission::Play, now())?;
        traces
            .consumption_per_access
            .merge(&agent.engine().take_trace());
        cycles.consumption_per_access += backend.take_charged_cycles();

        let digest = sha1(&plaintext);
        assert_eq!(
            digest, item.digest,
            "{device_id} recovered corrupted content for {}",
            item.content_id
        );
        content_digests.push(digest);
        ro_ids.push(ro_id.as_str().to_string());
    }

    Ok(DeviceOutcome {
        device_id,
        ro_ids,
        content_digests,
        traces,
        cycles,
    })
}

/// Runs the fleet: `spec.workers` threads pull device indices from a shared
/// queue and drive each device's full life-cycle against one shared
/// [`RiService`].
///
/// # Errors
///
/// Propagates the first [`DrmError`] any device hit — a failure means the
/// protocol itself broke under concurrency, which is precisely what the
/// harness exists to detect.
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let workers = spec.workers.max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<DeviceOutcome, DrmError>>>> =
        (0..spec.devices).map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= spec.devices {
                    break;
                }
                let outcome = drive_device(spec, index, &service, &ca, &catalog);
                *slots[index].lock().expect("slot lock") = Some(outcome);
            });
        }
    });
    let elapsed = started.elapsed();

    collect_report(slots, workers, elapsed, &service)
}

/// Collects the per-device outcome slots of a finished run into the sorted,
/// fleet-aggregated report. Shared by every driver.
fn collect_report(
    slots: Vec<Mutex<Option<Result<DeviceOutcome, DrmError>>>>,
    workers: usize,
    elapsed: Duration,
    service: &RiService,
) -> Result<FleetReport, DrmError> {
    let mut devices = Vec::with_capacity(slots.len());
    for slot in slots {
        devices.push(
            slot.into_inner()
                .expect("slot lock")
                .expect("every device index was claimed")?,
        );
    }
    devices.sort_by(|a, b| a.device_id.cmp(&b.device_id));

    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    for device in &devices {
        traces.merge(&device.traces);
        cycles.merge(&device.cycles);
    }

    Ok(FleetReport {
        workers,
        elapsed,
        registrations: service.registered_count() as u64,
        rights_objects: service.issued_ro_count(),
        devices,
        traces,
        cycles,
    })
}

/// Runs the same fleet on a single thread — the reference run that
/// concurrent results are compared against.
///
/// # Errors
///
/// See [`run_fleet`].
pub fn run_sequential(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    run_fleet(&spec.clone().with_workers(1))
}

/// Runs the fleet **over loopback TCP**: a [`RoapTcpServer`] (worker pool
/// sized like the client side, clock pinned to the fleet's fixed protocol
/// timestamp) serves one shared [`RiService`], and every device opens its
/// own connection, drives its full life-cycle through a
/// `RoapClient<TcpTransport>`, and disconnects — so a run of N devices is
/// also N accept/serve/hang-up cycles, the connection-churn pattern the
/// in-process drivers cannot express.
///
/// The device-driving code path is byte-for-byte the one [`run_fleet`]
/// uses; only the transport differs. The deterministic observables —
/// per-device RO ids, recovered-content digests, per-phase operation traces
/// and cycle bills — therefore `match` the in-process reference exactly:
/// `run_fleet_tcp(spec)?.matches(&run_sequential(spec)?)` holds.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Transport`] when the server
/// cannot bind or a connection fails mid-protocol.
pub fn run_fleet_tcp(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let service = Arc::new(service);
    let workers = spec.workers.max(1);
    let server = RoapTcpServer::bind(
        Arc::clone(&service),
        ServerConfig {
            workers,
            clock: Some(now()),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<DeviceOutcome, DrmError>>>> =
        (0..spec.devices).map(|_| Mutex::new(None)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= spec.devices {
                    break;
                }
                let outcome = TcpTransport::connect(addr).and_then(|transport| {
                    let client = RoapClient::new(transport);
                    drive_device_via(spec, index, service.id(), &client, &ca, &catalog)
                });
                *slots[index].lock().expect("slot lock") = Some(outcome);
            });
        }
    });
    let elapsed = started.elapsed();
    server.shutdown();

    collect_report(slots, workers, elapsed, &service)
}

// ----- wire mode -------------------------------------------------------------

/// Per-device state carried between the wire driver's waves.
struct WireDevice {
    index: usize,
    device_id: String,
    agent: DrmAgent,
    backend: Arc<SoftwareBackend>,
    traces: PhaseTraces,
    cycles: PhaseCycles,
    ro_ids: Vec<String>,
    content_digests: Vec<[u8; DIGEST_SIZE]>,
    hello: Option<RiHello>,
    registration: Option<RegistrationRequest>,
    registration_response: Option<RegistrationResponse>,
    ro_request: Option<RoRequest>,
    ro_response: Option<RoResponse>,
}

/// Runs `f` over every device, the slice split into one contiguous chunk per
/// worker thread. Device state never crosses a thread boundary mid-wave, so
/// outcomes stay deterministic per device.
fn wire_wave<F>(devices: &mut [WireDevice], workers: usize, f: F) -> Result<(), DrmError>
where
    F: Fn(&mut WireDevice) -> Result<(), DrmError> + Sync,
{
    if devices.is_empty() {
        return Ok(());
    }
    let chunk = devices.len().div_ceil(workers.max(1));
    let mut first_error = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = devices
            .chunks_mut(chunk)
            .map(|chunk| {
                scope.spawn(|| {
                    for device in chunk {
                        f(device)?;
                    }
                    Ok::<(), DrmError>(())
                })
            })
            .collect();
        for handle in handles {
            if let Err(e) = handle.join().expect("wire wave worker") {
                first_error.get_or_insert(e);
            }
        }
    });
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// Decodes the concatenated response stream of one `dispatch_batch` call
/// and hands each device its response PDU via `f`.
fn distribute_responses<F>(
    devices: &mut [WireDevice],
    responses: &[u8],
    f: F,
) -> Result<(), DrmError>
where
    F: Fn(&mut WireDevice, RoapPdu) -> Result<(), DrmError>,
{
    let pdus = wire::decode_stream(responses).map_err(DrmError::Roap)?;
    if pdus.len() != devices.len() {
        return Err(DrmError::Transport(format!(
            "batch answered {} of {} requests",
            pdus.len(),
            devices.len()
        )));
    }
    for (device, pdu) in devices.iter_mut().zip(pdus) {
        if let RoapPdu::Status(status) = &pdu {
            status.into_result()?;
        }
        f(device, pdu)?;
    }
    Ok(())
}

/// Runs the fleet in wire mode: every ROAP exchange is encoded into
/// [`RoapPdu`] frames and pushed through [`RiService::dispatch_batch`], one
/// bulk call per protocol wave (hellos, registrations, then each acquisition
/// round). Worker threads do the per-device cryptography between waves; the
/// envelope handling is amortized over the whole fleet.
///
/// The deterministic observables are identical to the in-process driver's:
/// `run_fleet_wire(spec)?.matches(&run_sequential(spec)?)` holds, because
/// the codec moves the very same PDUs the direct calls pass as structs.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Transport`] if the batch
/// response stream does not answer every request.
pub fn run_fleet_wire(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let workers = spec.workers.max(1);

    let started = Instant::now();

    // Provision every device (parallel, CA lock covers only certification).
    let mut devices: Vec<WireDevice> = Vec::with_capacity(spec.devices);
    {
        let slots: Vec<Mutex<Option<WireDevice>>> =
            (0..spec.devices).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= spec.devices {
                        break;
                    }
                    let (agent, backend) = provision_device(spec, index, &ca);
                    agent.engine().reset_trace();
                    backend.take_charged_cycles();
                    *slots[index].lock().expect("slot lock") = Some(WireDevice {
                        index,
                        device_id: spec.device_id(index),
                        agent,
                        backend,
                        traces: PhaseTraces::new(),
                        cycles: PhaseCycles::default(),
                        ro_ids: Vec::new(),
                        content_digests: Vec::new(),
                        hello: None,
                        registration: None,
                        registration_response: None,
                        ro_request: None,
                        ro_response: None,
                    });
                });
            }
        });
        for slot in slots {
            devices.push(
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every device index was claimed"),
            );
        }
    }

    // Wave 1: DeviceHello for every device, one batch.
    let stream: Vec<u8> = devices
        .iter()
        .flat_map(|d| RoapPdu::DeviceHello(DeviceHello::new(&d.device_id)).encode())
        .collect();
    let responses = service.dispatch_batch(&stream);
    distribute_responses(&mut devices, &responses, |device, pdu| match pdu {
        RoapPdu::RiHello(hello) => {
            device.hello = Some(hello);
            Ok(())
        }
        _ => Err(DrmError::Roap(RoapError::Malformed)),
    })?;

    // Wave 2: signed RegistrationRequests, one batch, then verification.
    wire_wave(&mut devices, workers, |device| {
        let hello = device.hello.as_ref().expect("hello wave ran").clone();
        let request = device.agent.registration_request(&hello, now())?;
        device
            .traces
            .registration
            .merge(&device.agent.engine().take_trace());
        device.cycles.registration += device.backend.take_charged_cycles();
        device.registration = Some(request);
        Ok(())
    })?;
    let stream: Vec<u8> = devices
        .iter()
        .flat_map(|d| {
            RoapPdu::RegistrationRequest(d.registration.clone().expect("request built")).encode()
        })
        .collect();
    let responses = service.dispatch_batch(&stream);
    distribute_responses(&mut devices, &responses, |device, pdu| match pdu {
        RoapPdu::RegistrationResponse(response) => {
            device.registration_response = Some(response);
            Ok(())
        }
        _ => Err(DrmError::Roap(RoapError::Malformed)),
    })?;
    wire_wave(&mut devices, workers, |device| {
        let hello = device.hello.take().expect("hello wave ran");
        let request = device.registration.take().expect("request built");
        let response = device
            .registration_response
            .take()
            .expect("response stored");
        device
            .agent
            .complete_registration(&hello, &request, &response, now())?;
        device
            .traces
            .registration
            .merge(&device.agent.engine().take_trace());
        device.cycles.registration += device.backend.take_charged_cycles();
        Ok(())
    })?;

    // Acquisition rounds: RORequest batch, then verify + install + consume.
    for round in 0..spec.acquisitions_per_device {
        wire_wave(&mut devices, workers, |device| {
            let item = &catalog[(device.index + round) % catalog.len()];
            let request = device
                .agent
                .ro_request(service.id(), &item.content_id, None, now())?;
            device
                .traces
                .acquisition
                .merge(&device.agent.engine().take_trace());
            device.cycles.acquisition += device.backend.take_charged_cycles();
            device.ro_request = Some(request);
            Ok(())
        })?;
        let stream: Vec<u8> = devices
            .iter()
            .flat_map(|d| RoapPdu::RoRequest(d.ro_request.clone().expect("request built")).encode())
            .collect();
        let responses = service.dispatch_batch(&stream);
        distribute_responses(&mut devices, &responses, |device, pdu| match pdu {
            RoapPdu::RoResponse(response) => {
                device.ro_response = Some(response);
                Ok(())
            }
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        })?;
        wire_wave(&mut devices, workers, |device| {
            let item = &catalog[(device.index + round) % catalog.len()];
            let request = device.ro_request.take().expect("request built");
            let response = device.ro_response.take().expect("response stored");
            device.agent.verify_ro_response(&request, &response)?;
            device
                .traces
                .acquisition
                .merge(&device.agent.engine().take_trace());
            device.cycles.acquisition += device.backend.take_charged_cycles();

            let ro_id = device.agent.install_rights(&response, now())?;
            device
                .traces
                .installation
                .merge(&device.agent.engine().take_trace());
            device.cycles.installation += device.backend.take_charged_cycles();

            let plaintext = device
                .agent
                .consume(&ro_id, &item.dcf, Permission::Play, now())?;
            device
                .traces
                .consumption_per_access
                .merge(&device.agent.engine().take_trace());
            device.cycles.consumption_per_access += device.backend.take_charged_cycles();

            let digest = sha1(&plaintext);
            assert_eq!(
                digest, item.digest,
                "{} recovered corrupted content for {}",
                device.device_id, item.content_id
            );
            device.content_digests.push(digest);
            device.ro_ids.push(ro_id.as_str().to_string());
            Ok(())
        })?;
    }
    let elapsed = started.elapsed();

    let mut outcomes: Vec<DeviceOutcome> = devices
        .into_iter()
        .map(|d| DeviceOutcome {
            device_id: d.device_id,
            ro_ids: d.ro_ids,
            content_digests: d.content_digests,
            traces: d.traces,
            cycles: d.cycles,
        })
        .collect();
    outcomes.sort_by(|a, b| a.device_id.cmp(&b.device_id));

    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    for device in &outcomes {
        traces.merge(&device.traces);
        cycles.merge(&device.cycles);
    }

    Ok(FleetReport {
        workers,
        elapsed,
        registrations: service.registered_count() as u64,
        rights_objects: service.issued_ro_count(),
        devices: outcomes,
        traces,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_are_fixed_width_and_seeds_distinct() {
        let spec = FleetSpec::new(4, 2);
        assert_eq!(spec.device_id(0), "dev-00000");
        assert_eq!(spec.device_id(123), "dev-00123");
        assert_eq!(spec.device_id(0).len(), spec.device_id(9_999).len());
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| spec.device_seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn smoke_fleet_registers_and_issues_deterministically() {
        let spec = FleetSpec::smoke();
        let run = run_fleet(&spec).unwrap();
        assert_eq!(run.registrations, spec.devices as u64);
        assert_eq!(
            run.rights_objects,
            (spec.devices * spec.acquisitions_per_device) as u64
        );
        assert!(run.duplicate_ro_ids().is_empty());
        for device in &run.devices {
            assert_eq!(device.ro_ids.len(), spec.acquisitions_per_device);
            assert!(!device.traces.registration.is_empty());
            assert!(device.cycles.registration > 0);
        }
        // Per-device RO ids depend only on the device, so the report is
        // reproducible run over run.
        let again = run_fleet(&spec).unwrap();
        assert!(run.matches(&again));
    }

    #[test]
    fn concurrent_matches_sequential_reference() {
        let spec = FleetSpec::new(6, 3);
        let concurrent = run_fleet(&spec).unwrap();
        let sequential = run_sequential(&spec).unwrap();
        assert_eq!(concurrent.workers, 3);
        assert_eq!(sequential.workers, 1);
        assert!(concurrent.matches(&sequential));
        assert_eq!(concurrent.cycles, sequential.cycles);
    }

    #[test]
    fn summary_carries_throughput() {
        let spec = FleetSpec::smoke();
        let run = run_fleet(&spec).unwrap();
        let summary = run.summary("smoke");
        assert_eq!(summary.devices, spec.devices);
        assert_eq!(summary.registrations, spec.devices as u64);
        assert!(summary.registrations_per_sec() > 0.0);
        assert!(summary.to_string().contains("ROs/s"));
    }

    #[test]
    fn wire_fleet_matches_in_proc_reference() {
        let spec = FleetSpec::new(5, 3).with_acquisitions(2);
        let wire = run_fleet_wire(&spec).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(wire.registrations, spec.devices as u64);
        assert!(
            wire.matches(&reference),
            "wire-mode outcomes must be byte-identical to direct calls"
        );
        assert!(wire.duplicate_ro_ids().is_empty());
    }

    #[test]
    fn tcp_fleet_matches_in_proc_reference() {
        let spec = FleetSpec::new(5, 3).with_acquisitions(2);
        let tcp = run_fleet_tcp(&spec).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(tcp.registrations, spec.devices as u64);
        assert!(
            tcp.matches(&reference),
            "loopback-TCP outcomes must be byte-identical to direct calls"
        );
        assert!(tcp.duplicate_ro_ids().is_empty());
    }

    #[test]
    fn tcp_fleet_single_worker_matches_concurrent_tcp() {
        // Connection churn and request interleaving across the socket must
        // not leak into any deterministic observable.
        let spec = FleetSpec::smoke();
        let concurrent = run_fleet_tcp(&spec).unwrap();
        let single = run_fleet_tcp(&spec.clone().with_workers(1)).unwrap();
        assert!(concurrent.matches(&single));
    }

    #[test]
    fn duplicate_detector_reports_duplicates() {
        let spec = FleetSpec::smoke();
        let mut run = run_fleet(&spec).unwrap();
        let stolen = run.devices[0].ro_ids[0].clone();
        run.devices[1].ro_ids.push(stolen.clone());
        assert_eq!(run.duplicate_ro_ids(), vec![stolen]);
    }
}
