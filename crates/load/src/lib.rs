//! A deterministic device-fleet load harness for the concurrent Rights
//! Issuer service.
//!
//! The paper prices OMA DRM 2 from the terminal's point of view; this crate
//! looks at the other end of the wire. [`run_fleet`] spawns N worker threads
//! that drive per-device-seeded [`DrmAgent`]s through full Registration →
//! Acquisition → Installation → Consumption cycles against **one shared
//! [`RiService`]**, and reports throughput (registrations/s, ROs/s) plus
//! fleet-wide per-phase operation traces and cycle totals through
//! [`oma_perf::report::FleetSummary`] — the same reporting surface as the
//! paper's Figure 6/7 tables.
//!
//! Determinism is the harness's defining property: everything a device
//! observes is derived from that device's seed, and Rights-Object ids are
//! allocated per device by the service. A multi-threaded run therefore
//! produces, device for device, **byte-identical outcomes** to a
//! single-threaded reference run — which is exactly what the concurrency
//! test suite asserts to prove the sharded service loses no updates.
//!
//! [`run_fleet_wire`] drives the same fleet **over the wire**: every ROAP
//! exchange is encoded into [`RoapPdu`] frames and pushed through
//! [`RiService::dispatch_batch`] in fleet-wide waves, measuring the
//! serialized protocol path next to the in-process numbers. Its outcomes
//! `match` the in-process driver's, frame codec and all.
//!
//! [`run_fleet_tcp`] goes the last rung down: the frames cross **real
//! loopback TCP connections** into a bounded-pool
//! [`oma_net::RoapTcpServer`], one connection per device life-cycle, and
//! the outcomes still `match` the in-process reference — transport is the
//! only thing that changed.
//!
//! [`run_fleet_durable`] turns the harness into a crash lab: the same wire
//! waves run against a **journaled** service (`oma_store::RiStore`), the
//! service is killed after a chosen number of served frames — mid-wave —
//! recovered from WAL + snapshot, and the remaining devices finish against
//! the recovered instance. The run reports every raw `RoResponse` frame, so
//! tests can assert byte-identity against an uninterrupted reference run:
//! recovery restores not just the tables but the random stream, signatures
//! and all.
//!
//! All drivers share two pieces of machinery: a worker-pool index fan-out
//! for per-device life-cycles, and one wave engine
//! (`hello_wave`/`registration_wave`/`acquisition_wave` over a pluggable
//! batch-dispatch function) for the wire-shaped drivers — the durable
//! variant is the wire driver with a different dispatch closure, not a
//! fourth copy of the protocol.
//!
//! # Example
//!
//! ```
//! use oma_load::{run_fleet, run_sequential, FleetSpec};
//!
//! let spec = FleetSpec::smoke();
//! let concurrent = run_fleet(&spec).unwrap();
//! let sequential = run_sequential(&spec).unwrap();
//!
//! assert_eq!(concurrent.registrations, spec.devices as u64);
//! assert!(concurrent.duplicate_ro_ids().is_empty());
//! // Per-device outcomes and aggregate traces match the sequential run.
//! assert!(concurrent.matches(&sequential));
//! println!("{}", concurrent.summary("smoke fleet"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idle;

pub use idle::{
    bind_idle_server, drive_idle_clients, drive_idle_clients_with, run_idle_fleet,
    IdleClientReport, IdleFleetReport, IdleFleetSpec,
};

use oma_cluster::{frame_device_id, AckPolicy, ClusterRouter, Follower, Primary};
use oma_crypto::backend::{CryptoBackend, SoftwareBackend};
use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::sha1::{sha1, DIGEST_SIZE};
use oma_drm::client::{RoapClient, RoapTransport};
use oma_drm::journal::RiJournal;
use oma_drm::roap::{
    DeviceHello, RegistrationRequest, RegistrationResponse, RiHello, RoRequest, RoResponse,
    RoapError,
};
use oma_drm::wire::RoapPdu;
use oma_drm::{ContentIssuer, Dcf, DrmAgent, DrmError, Permission, RiService, RightsTemplate};
use oma_net::{RoapEventServer, RoapTcpServer, ServerConfig, TcpTransport};
use oma_obs::{Histogram, ObsConfig};
use oma_perf::phases::PhaseTraces;
use oma_perf::report::FleetSummary;
use oma_perf::runner::PhaseCycles;
use oma_pki::{CertificationAuthority, EntityRole, Timestamp, ValidityPeriod};
use oma_store::{MemLog, RiStore, Wal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The protocol timestamp every fleet interaction uses. A fixed instant
/// keeps runs reproducible; OCSP freshness and datetime constraints are
/// exercised by the dedicated adversarial suites instead.
fn now() -> Timestamp {
    Timestamp::new(1_000)
}

use oma_drm::CERT_VALIDITY_SECONDS;

/// Parameters of one fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Number of simulated devices.
    pub devices: usize,
    /// Worker threads driving the devices.
    pub workers: usize,
    /// Full Acquisition → Installation → Consumption cycles per device
    /// (registration happens once per device).
    pub acquisitions_per_device: usize,
    /// Number of distinct content items in the Rights Issuer's catalogue.
    pub contents: usize,
    /// Plaintext length of each content item in bytes.
    pub content_len: usize,
    /// RSA modulus size for the CA, the service and every device.
    pub rsa_modulus_bits: usize,
    /// Base seed; every per-device seed derives from it.
    pub base_seed: u64,
}

impl FleetSpec {
    /// A fleet of `devices` devices driven by `workers` threads, with one
    /// acquisition cycle per device over a small catalogue (test-sized
    /// 384-bit keys, 1 KiB content).
    pub fn new(devices: usize, workers: usize) -> Self {
        FleetSpec {
            devices,
            workers,
            acquisitions_per_device: 1,
            contents: 4,
            content_len: 1024,
            rsa_modulus_bits: 384,
            base_seed: 0xf1ee7,
        }
    }

    /// A minimal fleet for doctests and smoke checks.
    pub fn smoke() -> Self {
        FleetSpec {
            contents: 2,
            content_len: 256,
            ..Self::new(3, 2)
        }
    }

    /// The identifier of device `index` (fixed width, so every ROAP message
    /// a device sends has the same length regardless of its index).
    pub fn device_id(&self, index: usize) -> String {
        format!("dev-{index:05}")
    }

    /// The RNG seed of device `index`. Each device derives all of its key
    /// material and nonces from this seed alone.
    pub fn device_seed(&self, index: usize) -> u64 {
        self.base_seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Returns the spec with a different worker count (the sequential
    /// reference of a concurrent spec is `with_workers(1)`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns the spec with a different number of acquisition cycles per
    /// device.
    pub fn with_acquisitions(mut self, acquisitions_per_device: usize) -> Self {
        self.acquisitions_per_device = acquisitions_per_device;
        self
    }
}

/// Pre-resolved fleet-phase histogram handles: per-device wall-clock of
/// the two ROAP exchanges the paper prices — registration and
/// Rights-Object acquisition. One sample per device (registration) or per
/// acquisition round, recorded by the worker that drove the device, so a
/// fleet run yields a full latency *distribution*, not just a mean.
struct FleetObs {
    registration_nanos: Arc<Histogram>,
    acquisition_nanos: Arc<Histogram>,
}

impl FleetObs {
    /// Resolves the `fleet_registration_nanos` / `fleet_acquisition_nanos`
    /// histograms, or `None` when observability is off.
    fn from_config(obs: &ObsConfig) -> Option<FleetObs> {
        obs.obs().map(|obs| FleetObs {
            registration_nanos: obs.registry().histogram("fleet_registration_nanos"),
            acquisition_nanos: obs.registry().histogram("fleet_acquisition_nanos"),
        })
    }
}

/// One catalogue entry the fleet acquires rights for.
#[derive(Debug)]
struct CatalogItem {
    content_id: String,
    dcf: Dcf,
    digest: [u8; DIGEST_SIZE],
}

/// Everything one device observed during its life-cycle. Two runs of the
/// same spec must produce equal outcomes for every device, no matter how
/// the scheduler interleaved them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceOutcome {
    /// The device identifier.
    pub device_id: String,
    /// Rights Object ids the service issued to this device, in order.
    pub ro_ids: Vec<String>,
    /// SHA-1 digest of each recovered plaintext, in acquisition order.
    pub content_digests: Vec<[u8; DIGEST_SIZE]>,
    /// Per-phase operation traces of the device's crypto engine (consumption
    /// holds the sum over all accesses).
    pub traces: PhaseTraces,
    /// Per-phase cycles charged by the device's backend. The consumption
    /// field holds the sum over all of this device's accesses, so total
    /// this with [`PhaseCycles::sum`], not `total(accesses)`.
    pub cycles: PhaseCycles,
}

/// The result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the device-driving portion of the run.
    pub elapsed: Duration,
    /// Devices registered with the service when the run finished.
    pub registrations: u64,
    /// Rights Objects the service issued.
    pub rights_objects: u64,
    /// Per-device outcomes, sorted by device id.
    pub devices: Vec<DeviceOutcome>,
    /// Fleet-wide per-phase operation traces (sum over devices).
    pub traces: PhaseTraces,
    /// Fleet-wide per-phase cycle totals (sum over devices; the consumption
    /// field holds the summed figure — see [`PhaseCycles::sum`]).
    pub cycles: PhaseCycles,
}

impl FleetReport {
    /// Builds the printable summary for this run.
    pub fn summary(&self, name: &str) -> FleetSummary {
        FleetSummary {
            name: name.to_string(),
            workers: self.workers,
            devices: self.devices.len(),
            elapsed_secs: self.elapsed.as_secs_f64(),
            registrations: self.registrations,
            rights_objects: self.rights_objects,
            phase_cycles: self.cycles,
        }
    }

    /// Rights Object ids that were issued more than once across the whole
    /// fleet. Must be empty: a duplicate would mean two devices hold the
    /// same license identity.
    pub fn duplicate_ro_ids(&self) -> Vec<String> {
        let mut all: Vec<&String> = self.devices.iter().flat_map(|d| d.ro_ids.iter()).collect();
        all.sort_unstable();
        let mut duplicates = Vec::new();
        for pair in all.windows(2) {
            if pair[0] == pair[1] && duplicates.last() != Some(pair[0]) {
                duplicates.push(pair[0].clone());
            }
        }
        duplicates
    }

    /// Whether this run's deterministic observables — per-device outcomes,
    /// aggregate traces and cycles, registration and RO counts — equal
    /// `other`'s. Wall-clock time and worker count are excluded: they are
    /// the two things *allowed* to differ between a concurrent run and its
    /// sequential reference.
    pub fn matches(&self, other: &FleetReport) -> bool {
        self.devices == other.devices
            && self.traces == other.traces
            && self.cycles == other.cycles
            && self.registrations == other.registrations
            && self.rights_objects == other.rights_objects
    }
}

/// Builds the shared world: CA, service and content catalogue. Setup is
/// single-threaded and fully determined by the spec.
fn build_world(spec: &FleetSpec) -> (Mutex<CertificationAuthority>, RiService, Vec<CatalogItem>) {
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
    let service = RiService::new("ri.fleet", spec.rsa_modulus_bits, &mut ca, &mut rng);
    let catalog = build_catalog(spec, &service, &mut rng);
    (Mutex::new(ca), service, catalog)
}

/// Packages the content catalogue and registers it with the service. Split
/// from [`build_world`] so the durable driver can attach the journal (and
/// write the genesis snapshot) *before* the catalogue events flow.
fn build_catalog(spec: &FleetSpec, service: &RiService, rng: &mut StdRng) -> Vec<CatalogItem> {
    let ci = ContentIssuer::new("ci.fleet");
    (0..spec.contents.max(1))
        .map(|c| {
            let mut content_rng = StdRng::seed_from_u64(spec.base_seed ^ (((c as u64) << 32) | 1));
            let mut content = vec![0u8; spec.content_len];
            rand::RngCore::fill_bytes(&mut content_rng, &mut content);
            let content_id = format!("cid:fleet-{c:03}");
            let (dcf, cek) = ci.package(&content, &content_id, rng);
            service.add_content(
                &content_id,
                cek,
                &dcf,
                RightsTemplate::unlimited(Permission::Play),
            );
            CatalogItem {
                content_id,
                dcf,
                digest: sha1(&content),
            }
        })
        .collect()
}

/// The shared fan-out primitive of every driver: `workers` threads pull
/// device indices from one atomic counter and run `f` per index; results
/// come back in index order. The first error any device hit is propagated
/// after all workers finish.
fn device_pool<T: Send>(
    count: usize,
    workers: usize,
    f: impl Fn(usize) -> Result<T, DrmError> + Sync,
) -> Result<Vec<T>, DrmError> {
    let slots: Vec<Mutex<Option<Result<T, DrmError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let outcome = f(index);
                *slots[index].lock().expect("slot lock") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock")
                .expect("every device index was claimed")
        })
        .collect()
}

/// Provisions one device: key pair, certificate from the shared CA, and an
/// agent on a fresh metered software backend. Shared by the in-process
/// driver and the wire driver, so both provision byte-identical devices.
fn provision_device(
    spec: &FleetSpec,
    index: usize,
    ca: &Mutex<CertificationAuthority>,
) -> (DrmAgent, Arc<SoftwareBackend>) {
    let mut rng = StdRng::seed_from_u64(spec.device_seed(index));
    let backend = Arc::new(SoftwareBackend::new());
    let device_id = spec.device_id(index);
    // Generate the (expensive) device key pair outside the CA lock, so
    // workers never serialise on key generation; the lock covers only the
    // certificate signature.
    let keys = RsaKeyPair::generate(spec.rsa_modulus_bits, &mut rng);
    let (certificate, ca_root) = {
        let mut ca = ca.lock().expect("ca lock");
        let certificate = ca.issue(
            &device_id,
            EntityRole::DrmAgent,
            keys.public().clone(),
            ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
        );
        (certificate, ca.root_certificate().clone())
    };
    let agent = DrmAgent::with_credentials(
        &device_id,
        keys,
        certificate,
        ca_root,
        Arc::<SoftwareBackend>::clone(&backend),
        &mut rng,
    );
    (agent, backend)
}

/// Drives one device through registration plus its acquisition cycles
/// against an in-process service — a [`drive_device_via`] over the
/// in-process transport, which is exactly what the legacy `*_with` agent
/// methods are.
fn drive_device(
    spec: &FleetSpec,
    index: usize,
    service: &RiService,
    ca: &Mutex<CertificationAuthority>,
    catalog: &[CatalogItem],
) -> Result<DeviceOutcome, DrmError> {
    drive_device_via(
        spec,
        index,
        service.id(),
        &RoapClient::in_proc(service),
        ca,
        catalog,
        None,
    )
}

/// Drives one device through registration plus its acquisition cycles over
/// an arbitrary ROAP transport. Every driver — in-process, loopback TCP —
/// runs this one code path, which is what makes their per-device outcomes
/// (traces, cycles, RO ids, recovered content) byte-identical.
fn drive_device_via<T: RoapTransport>(
    spec: &FleetSpec,
    index: usize,
    ri_id: &str,
    client: &RoapClient<T>,
    ca: &Mutex<CertificationAuthority>,
    catalog: &[CatalogItem],
    obs: Option<&FleetObs>,
) -> Result<DeviceOutcome, DrmError> {
    let (mut agent, backend) = provision_device(spec, index, ca);
    let device_id = spec.device_id(index);

    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    agent.engine().reset_trace();
    backend.take_charged_cycles();

    let started = Instant::now();
    agent.register_via(client, now())?;
    if let Some(obs) = obs {
        obs.registration_nanos.record_duration(started.elapsed());
    }
    traces.registration.merge(&agent.engine().take_trace());
    cycles.registration += backend.take_charged_cycles();

    let mut ro_ids = Vec::with_capacity(spec.acquisitions_per_device);
    let mut content_digests = Vec::with_capacity(spec.acquisitions_per_device);
    for k in 0..spec.acquisitions_per_device {
        let item = &catalog[(index + k) % catalog.len()];

        let started = Instant::now();
        let response = agent.acquire_rights_via(client, ri_id, &item.content_id, now())?;
        if let Some(obs) = obs {
            obs.acquisition_nanos.record_duration(started.elapsed());
        }
        traces.acquisition.merge(&agent.engine().take_trace());
        cycles.acquisition += backend.take_charged_cycles();

        let ro_id = agent.install_rights(&response, now())?;
        traces.installation.merge(&agent.engine().take_trace());
        cycles.installation += backend.take_charged_cycles();

        let plaintext = agent.consume(&ro_id, &item.dcf, Permission::Play, now())?;
        traces
            .consumption_per_access
            .merge(&agent.engine().take_trace());
        cycles.consumption_per_access += backend.take_charged_cycles();

        let digest = sha1(&plaintext);
        assert_eq!(
            digest, item.digest,
            "{device_id} recovered corrupted content for {}",
            item.content_id
        );
        content_digests.push(digest);
        ro_ids.push(ro_id.as_str().to_string());
    }

    Ok(DeviceOutcome {
        device_id,
        ro_ids,
        content_digests,
        traces,
        cycles,
    })
}

/// Runs the fleet: `spec.workers` threads pull device indices from a shared
/// queue and drive each device's full life-cycle against one shared
/// [`RiService`].
///
/// # Errors
///
/// Propagates the first [`DrmError`] any device hit — a failure means the
/// protocol itself broke under concurrency, which is precisely what the
/// harness exists to detect.
pub fn run_fleet(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let workers = spec.workers.max(1);

    let started = Instant::now();
    let devices = device_pool(spec.devices, workers, |index| {
        drive_device(spec, index, &service, &ca, &catalog)
    })?;
    let elapsed = started.elapsed();

    Ok(collect_report(devices, workers, elapsed, &service))
}

/// Collects the per-device outcomes of a finished run into the sorted,
/// fleet-aggregated report. Shared by every driver.
fn collect_report(
    mut devices: Vec<DeviceOutcome>,
    workers: usize,
    elapsed: Duration,
    service: &RiService,
) -> FleetReport {
    devices.sort_by(|a, b| a.device_id.cmp(&b.device_id));

    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    for device in &devices {
        traces.merge(&device.traces);
        cycles.merge(&device.cycles);
    }

    FleetReport {
        workers,
        elapsed,
        registrations: service.registered_count() as u64,
        rights_objects: service.issued_ro_count(),
        devices,
        traces,
        cycles,
    }
}

/// Runs the same fleet on a single thread — the reference run that
/// concurrent results are compared against.
///
/// # Errors
///
/// See [`run_fleet`].
pub fn run_sequential(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    run_fleet(&spec.clone().with_workers(1))
}

/// Runs the fleet **over loopback TCP**: a [`RoapTcpServer`] (worker pool
/// sized like the client side, clock pinned to the fleet's fixed protocol
/// timestamp) serves one shared [`RiService`], and every device opens its
/// own connection, drives its full life-cycle through a
/// `RoapClient<TcpTransport>`, and disconnects — so a run of N devices is
/// also N accept/serve/hang-up cycles, the connection-churn pattern the
/// in-process drivers cannot express.
///
/// The device-driving code path is byte-for-byte the one [`run_fleet`]
/// uses; only the transport differs. The deterministic observables —
/// per-device RO ids, recovered-content digests, per-phase operation traces
/// and cycle bills — therefore `match` the in-process reference exactly:
/// `run_fleet_tcp(spec)?.matches(&run_sequential(spec)?)` holds.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Transport`] when the server
/// cannot bind or a connection fails mid-protocol.
pub fn run_fleet_tcp(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    run_fleet_tcp_with(spec, TcpBackend::ThreadPool)
}

/// Which server core a TCP fleet run binds. Both backends speak the same
/// wire protocol behind the same [`ServerConfig`], so a fleet driven
/// against either produces byte-identical per-device observables — that
/// equivalence is what lets the event loop replace the thread pool without
/// touching any client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpBackend {
    /// The accept-thread + bounded-worker-pool [`RoapTcpServer`]: one
    /// blocking OS thread per in-flight connection, up to `workers`.
    ThreadPool,
    /// The readiness event loop [`RoapEventServer`]: every connection
    /// multiplexed onto one thread, concurrency independent of `workers`.
    EventLoop,
}

/// Either server core behind one bind/addr/metrics/shutdown surface, so
/// the fleet drivers are written once.
enum AnyServer {
    Thread(RoapTcpServer),
    Event(RoapEventServer),
}

impl AnyServer {
    fn bind(
        backend: TcpBackend,
        service: Arc<RiService>,
        config: ServerConfig,
    ) -> Result<AnyServer, DrmError> {
        match backend {
            TcpBackend::ThreadPool => RoapTcpServer::bind(service, config).map(AnyServer::Thread),
            TcpBackend::EventLoop => RoapEventServer::bind(service, config).map(AnyServer::Event),
        }
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        match self {
            AnyServer::Thread(s) => s.local_addr(),
            AnyServer::Event(s) => s.local_addr(),
        }
    }

    fn shutdown(self) {
        match self {
            AnyServer::Thread(s) => s.shutdown(),
            AnyServer::Event(s) => s.shutdown(),
        }
    }
}

/// [`run_fleet_tcp`] with an explicit choice of server core.
///
/// The report (and every per-device observable inside it) is independent
/// of the backend: `run_fleet_tcp_with(spec, TcpBackend::EventLoop)`
/// matches the sequential in-process reference exactly, just as the
/// thread-pool run does.
///
/// # Errors
///
/// See [`run_fleet_tcp`].
pub fn run_fleet_tcp_with(spec: &FleetSpec, backend: TcpBackend) -> Result<FleetReport, DrmError> {
    run_fleet_tcp_obs(spec, backend, &ObsConfig::Off)
}

/// [`run_fleet_tcp_with`] with an observability surface attached to *both*
/// ends of the wire: the server core records its per-frame latency
/// histograms into `obs`'s registry, and every client worker records the
/// wall-clock of each device's registration and RO-acquisition exchange
/// into the `fleet_registration_nanos` / `fleet_acquisition_nanos`
/// histograms — the paper's two priced protocol phases, as latency
/// distributions instead of means. With [`ObsConfig::Off`] this is exactly
/// [`run_fleet_tcp_with`].
///
/// # Errors
///
/// See [`run_fleet_tcp`].
pub fn run_fleet_tcp_obs(
    spec: &FleetSpec,
    backend: TcpBackend,
    obs: &ObsConfig,
) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let service = Arc::new(service);
    let workers = spec.workers.max(1);
    let server = AnyServer::bind(
        backend,
        Arc::clone(&service),
        ServerConfig {
            workers,
            clock: Some(now()),
            obs: obs.clone(),
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let fleet_obs = FleetObs::from_config(obs);

    let started = Instant::now();
    let devices = device_pool(spec.devices, workers, |index| {
        TcpTransport::connect(addr).and_then(|transport| {
            let client = RoapClient::new(transport);
            drive_device_via(
                spec,
                index,
                service.id(),
                &client,
                &ca,
                &catalog,
                fleet_obs.as_ref(),
            )
        })
    })?;
    let elapsed = started.elapsed();
    server.shutdown();

    Ok(collect_report(devices, workers, elapsed, &service))
}

// ----- wire-wave engine ------------------------------------------------------
//
// One protocol engine drives every wire-shaped fleet: requests are prepared
// client-side in worker chunks, exchanged through a pluggable batch-dispatch
// function, and completed client-side — with per-device progress flags, so a
// wave can be re-entered after the dispatch function reports that the
// service died mid-batch. `run_fleet_wire` plugs in `dispatch_batch`;
// `run_fleet_durable` plugs in a frame-counting dispatcher that kills and
// later recovers the service. Neither duplicates the protocol.

/// The server side of one wave, as the wave engine sees it: given the
/// pending request frames (in device order), return one response frame per
/// request — or `None` for requests the service never answered because it
/// died mid-batch. Infrastructure failures (a socket error, a poisoned
/// stream) are `Err`; a planned kill is data, not an error.
type BatchDispatch<'a> = dyn FnMut(&[Vec<u8>]) -> Result<Vec<Option<Vec<u8>>>, DrmError> + 'a;

/// Per-device state carried between waves.
struct WireDevice {
    index: usize,
    device_id: String,
    agent: DrmAgent,
    backend: Arc<SoftwareBackend>,
    traces: PhaseTraces,
    cycles: PhaseCycles,
    ro_ids: Vec<String>,
    content_digests: Vec<[u8; DIGEST_SIZE]>,
    /// Raw `RoResponse` frames in acquisition order — the bytes the
    /// crash-recovery suite compares against an uninterrupted reference.
    ro_frames: Vec<Vec<u8>>,
    /// Progress flags: a wave re-entered after a crash skips devices that
    /// already hold this wave's result.
    registered: bool,
    acquired_rounds: usize,
    hello: Option<RiHello>,
    registration: Option<RegistrationRequest>,
    registration_response: Option<RegistrationResponse>,
    ro_request: Option<RoRequest>,
    ro_response: Option<RoResponse>,
}

/// Provisions the whole fleet: key generation (the expensive part) fans out
/// through the shared device pool, but certificates are issued in device
/// order afterwards — CA serial numbers end up pinned in *server* state at
/// registration, so the crash-recovery suite's whole-state comparison needs
/// them deterministic, not scheduler-ordered.
fn provision_wire_devices(
    spec: &FleetSpec,
    ca: &Mutex<CertificationAuthority>,
    workers: usize,
) -> Result<Vec<WireDevice>, DrmError> {
    let keys = device_pool(spec.devices, workers, |index| {
        let mut rng = StdRng::seed_from_u64(spec.device_seed(index));
        let keys = RsaKeyPair::generate(spec.rsa_modulus_bits, &mut rng);
        Ok((keys, rng))
    })?;
    let mut ca = ca.lock().expect("ca lock");
    let devices = keys
        .into_iter()
        .enumerate()
        .map(|(index, (keys, mut rng))| {
            let device_id = spec.device_id(index);
            let certificate = ca.issue(
                &device_id,
                EntityRole::DrmAgent,
                keys.public().clone(),
                ValidityPeriod::starting_at(Timestamp::new(0), CERT_VALIDITY_SECONDS),
            );
            let backend = Arc::new(SoftwareBackend::new());
            let agent = DrmAgent::with_credentials(
                &device_id,
                keys,
                certificate,
                ca.root_certificate().clone(),
                Arc::<SoftwareBackend>::clone(&backend),
                &mut rng,
            );
            agent.engine().reset_trace();
            backend.take_charged_cycles();
            wire_device(index, device_id, agent, backend)
        })
        .collect();
    Ok(devices)
}

/// A freshly provisioned, not-yet-registered wire device.
fn wire_device(
    index: usize,
    device_id: String,
    agent: DrmAgent,
    backend: Arc<SoftwareBackend>,
) -> WireDevice {
    WireDevice {
        index,
        device_id,
        agent,
        backend,
        traces: PhaseTraces::new(),
        cycles: PhaseCycles::default(),
        ro_ids: Vec::new(),
        content_digests: Vec::new(),
        ro_frames: Vec::new(),
        registered: false,
        acquired_rounds: 0,
        hello: None,
        registration: None,
        registration_response: None,
        ro_request: None,
        ro_response: None,
    }
}

/// Runs `f` over every device, the slice split into one contiguous chunk per
/// worker thread. Device state never crosses a thread boundary mid-wave, so
/// outcomes stay deterministic per device.
fn wire_wave<F>(devices: &mut [WireDevice], workers: usize, f: F) -> Result<(), DrmError>
where
    F: Fn(&mut WireDevice) -> Result<(), DrmError> + Sync,
{
    if devices.is_empty() {
        return Ok(());
    }
    let chunk = devices.len().div_ceil(workers.max(1));
    let mut first_error = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = devices
            .chunks_mut(chunk)
            .map(|chunk| {
                scope.spawn(|| {
                    for device in chunk {
                        f(device)?;
                    }
                    Ok::<(), DrmError>(())
                })
            })
            .collect();
        for handle in handles {
            if let Err(e) = handle.join().expect("wire wave worker") {
                first_error.get_or_insert(e);
            }
        }
    });
    match first_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// One request/response exchange for every device `pending` selects:
/// `build` encodes the request frame, the dispatch function produces
/// response frames, `accept` consumes each answered device's PDU. Returns
/// whether every pending device was answered — `false` means the service
/// died mid-batch and the wave must be re-entered once it is back.
fn exchange(
    devices: &mut [WireDevice],
    pending: impl Fn(&WireDevice) -> bool,
    build: impl Fn(&WireDevice) -> Vec<u8>,
    mut accept: impl FnMut(&mut WireDevice, &[u8], RoapPdu) -> Result<(), DrmError>,
    dispatch: &mut BatchDispatch<'_>,
) -> Result<bool, DrmError> {
    let indices: Vec<usize> = devices
        .iter()
        .enumerate()
        .filter(|(_, d)| pending(d))
        .map(|(i, _)| i)
        .collect();
    if indices.is_empty() {
        return Ok(true);
    }
    let frames: Vec<Vec<u8>> = indices.iter().map(|&i| build(&devices[i])).collect();
    let responses = dispatch(&frames)?;
    if responses.len() != frames.len() {
        return Err(DrmError::Transport(format!(
            "batch answered {} of {} requests",
            responses.len(),
            frames.len()
        )));
    }
    let mut complete = true;
    for (&index, response) in indices.iter().zip(&responses) {
        match response {
            None => complete = false,
            Some(frame) => {
                let pdu = RoapPdu::decode(frame).map_err(DrmError::Roap)?;
                if let RoapPdu::Status(status) = &pdu {
                    status.into_result()?;
                }
                accept(&mut devices[index], frame, pdu)?;
            }
        }
    }
    Ok(complete)
}

/// Wave 1: `DeviceHello` for every device that has no session yet.
fn hello_wave(
    devices: &mut [WireDevice],
    dispatch: &mut BatchDispatch<'_>,
) -> Result<bool, DrmError> {
    exchange(
        devices,
        |d| !d.registered && d.hello.is_none(),
        |d| RoapPdu::DeviceHello(DeviceHello::new(&d.device_id)).encode(),
        |device, _frame, pdu| match pdu {
            RoapPdu::RiHello(hello) => {
                device.hello = Some(hello);
                Ok(())
            }
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        },
        dispatch,
    )
}

/// Wave 2: signed `RegistrationRequest`s, then verification of the
/// responses. Requests are built exactly once per device (client-side
/// nonces must not be redrawn when a wave is re-entered after a crash).
fn registration_wave(
    devices: &mut [WireDevice],
    workers: usize,
    now: Timestamp,
    dispatch: &mut BatchDispatch<'_>,
) -> Result<bool, DrmError> {
    wire_wave(devices, workers, |device| {
        if device.registered || device.registration.is_some() {
            return Ok(());
        }
        let hello = device.hello.as_ref().expect("hello wave ran").clone();
        let request = device.agent.registration_request(&hello, now)?;
        device
            .traces
            .registration
            .merge(&device.agent.engine().take_trace());
        device.cycles.registration += device.backend.take_charged_cycles();
        device.registration = Some(request);
        Ok(())
    })?;
    let complete = exchange(
        devices,
        |d| !d.registered && d.registration_response.is_none(),
        |d| RoapPdu::RegistrationRequest(d.registration.clone().expect("request built")).encode(),
        |device, _frame, pdu| match pdu {
            RoapPdu::RegistrationResponse(response) => {
                device.registration_response = Some(response);
                Ok(())
            }
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        },
        dispatch,
    )?;
    wire_wave(devices, workers, |device| {
        let Some(response) = device.registration_response.take() else {
            return Ok(());
        };
        let hello = device.hello.take().expect("hello wave ran");
        let request = device.registration.take().expect("request built");
        device
            .agent
            .complete_registration(&hello, &request, &response, now)?;
        device
            .traces
            .registration
            .merge(&device.agent.engine().take_trace());
        device.cycles.registration += device.backend.take_charged_cycles();
        device.registered = true;
        Ok(())
    })?;
    Ok(complete)
}

/// One acquisition round: `RORequest` exchange, then verify + install +
/// consume for every answered device.
fn acquisition_wave(
    devices: &mut [WireDevice],
    workers: usize,
    round: usize,
    ri_id: &str,
    catalog: &[CatalogItem],
    now: Timestamp,
    dispatch: &mut BatchDispatch<'_>,
) -> Result<bool, DrmError> {
    wire_wave(devices, workers, |device| {
        if device.acquired_rounds != round || device.ro_request.is_some() {
            return Ok(());
        }
        let item = &catalog[(device.index + round) % catalog.len()];
        let request = device
            .agent
            .ro_request(ri_id, &item.content_id, None, now)?;
        device
            .traces
            .acquisition
            .merge(&device.agent.engine().take_trace());
        device.cycles.acquisition += device.backend.take_charged_cycles();
        device.ro_request = Some(request);
        Ok(())
    })?;
    let complete = exchange(
        devices,
        |d| d.acquired_rounds == round && d.ro_response.is_none(),
        |d| RoapPdu::RoRequest(d.ro_request.clone().expect("request built")).encode(),
        |device, frame, pdu| match pdu {
            RoapPdu::RoResponse(response) => {
                device.ro_response = Some(response);
                device.ro_frames.push(frame.to_vec());
                Ok(())
            }
            _ => Err(DrmError::Roap(RoapError::Malformed)),
        },
        dispatch,
    )?;
    wire_wave(devices, workers, |device| {
        let Some(response) = device.ro_response.take() else {
            return Ok(());
        };
        let item = &catalog[(device.index + round) % catalog.len()];
        let request = device.ro_request.take().expect("request built");
        device.agent.verify_ro_response(&request, &response)?;
        device
            .traces
            .acquisition
            .merge(&device.agent.engine().take_trace());
        device.cycles.acquisition += device.backend.take_charged_cycles();

        let ro_id = device.agent.install_rights(&response, now)?;
        device
            .traces
            .installation
            .merge(&device.agent.engine().take_trace());
        device.cycles.installation += device.backend.take_charged_cycles();

        let plaintext = device
            .agent
            .consume(&ro_id, &item.dcf, Permission::Play, now)?;
        device
            .traces
            .consumption_per_access
            .merge(&device.agent.engine().take_trace());
        device.cycles.consumption_per_access += device.backend.take_charged_cycles();

        let digest = sha1(&plaintext);
        assert_eq!(
            digest, item.digest,
            "{} recovered corrupted content for {}",
            device.device_id, item.content_id
        );
        device.content_digests.push(digest);
        device.ro_ids.push(ro_id.as_str().to_string());
        device.acquired_rounds = round + 1;
        Ok(())
    })?;
    Ok(complete)
}

/// Splits a concatenated response stream into raw per-frame byte strings
/// (no decoding — the wave engine decodes).
fn split_frames(stream: &[u8]) -> Result<Vec<Vec<u8>>, DrmError> {
    let mut frames = Vec::new();
    let mut rest = stream;
    while !rest.is_empty() {
        let len = RoapPdu::frame_len(rest)
            .map_err(DrmError::Roap)?
            .filter(|len| rest.len() >= *len)
            .ok_or_else(|| DrmError::Transport("truncated response stream".into()))?;
        frames.push(rest[..len].to_vec());
        rest = &rest[len..];
    }
    Ok(frames)
}

/// Per-device raw `RoResponse` frames (device id → frames in acquisition
/// order), sorted by device id.
pub type RoResponseFrames = Vec<(String, Vec<Vec<u8>>)>;

/// Drains every wire device into its immutable outcome (plus the captured
/// raw `RoResponse` frames), sorted by device id.
fn finish_wire_devices(devices: Vec<WireDevice>) -> (Vec<DeviceOutcome>, RoResponseFrames) {
    let mut outcomes = Vec::with_capacity(devices.len());
    let mut frames = Vec::with_capacity(devices.len());
    for device in devices {
        frames.push((device.device_id.clone(), device.ro_frames));
        outcomes.push(DeviceOutcome {
            device_id: device.device_id,
            ro_ids: device.ro_ids,
            content_digests: device.content_digests,
            traces: device.traces,
            cycles: device.cycles,
        });
    }
    outcomes.sort_by(|a, b| a.device_id.cmp(&b.device_id));
    frames.sort_by(|a, b| a.0.cmp(&b.0));
    (outcomes, frames)
}

/// Runs the fleet in wire mode: every ROAP exchange is encoded into
/// [`RoapPdu`] frames and pushed through [`RiService::dispatch_batch`], one
/// bulk call per protocol wave (hellos, registrations, then each acquisition
/// round). Worker threads do the per-device cryptography between waves; the
/// envelope handling is amortized over the whole fleet.
///
/// The deterministic observables are identical to the in-process driver's:
/// `run_fleet_wire(spec)?.matches(&run_sequential(spec)?)` holds, because
/// the codec moves the very same PDUs the direct calls pass as structs.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Transport`] if the batch
/// response stream does not answer every request.
pub fn run_fleet_wire(spec: &FleetSpec) -> Result<FleetReport, DrmError> {
    let (ca, service, catalog) = build_world(spec);
    let workers = spec.workers.max(1);

    let started = Instant::now();
    let mut devices = provision_wire_devices(spec, &ca, workers)?;
    let mut dispatch = |frames: &[Vec<u8>]| -> Result<Vec<Option<Vec<u8>>>, DrmError> {
        let stream: Vec<u8> = frames.concat();
        let responses = service.dispatch_batch(&stream);
        Ok(split_frames(&responses)?.into_iter().map(Some).collect())
    };

    let mut complete = hello_wave(&mut devices, &mut dispatch)?;
    complete &= registration_wave(&mut devices, workers, now(), &mut dispatch)?;
    for round in 0..spec.acquisitions_per_device {
        complete &= acquisition_wave(
            &mut devices,
            workers,
            round,
            service.id(),
            &catalog,
            now(),
            &mut dispatch,
        )?;
    }
    if !complete {
        return Err(DrmError::Transport(
            "dispatch_batch left requests unanswered".into(),
        ));
    }
    let elapsed = started.elapsed();

    let (outcomes, _frames) = finish_wire_devices(devices);
    Ok(collect_report(outcomes, workers, elapsed, &service))
}

// ----- durable mode ----------------------------------------------------------

/// The crash plan and report of a [`run_fleet_durable`] run.
///
/// Beyond the usual [`FleetReport`], the durable driver reports the raw
/// `RoResponse` frames every device received — the bytes whose equality
/// with an uninterrupted reference run *is* the crash-recovery invariant —
/// plus how often the service was killed and how many journal events each
/// recovery replayed.
#[derive(Debug, Clone)]
pub struct DurableReport {
    /// The regular fleet report (outcomes, traces, cycles, counts).
    pub fleet: FleetReport,
    /// How many times the service was killed and recovered.
    pub recoveries: u64,
    /// Journal events replayed across all recoveries.
    pub events_replayed: u64,
    /// Raw `RoResponse` frames per device (sorted by device id, frames in
    /// acquisition order) — byte-identical across killed and uninterrupted
    /// runs of the same spec.
    pub ro_response_frames: RoResponseFrames,
    /// The final state image of the (possibly recovered) service, for
    /// whole-state equality checks against a reference run.
    pub final_state: oma_drm::RiStateImage,
}

/// Runs the fleet against a journaled service backed by an in-memory store
/// and — when `kill_after_frames` is `Some(k)` — kills the service after it
/// has served `k` frames, recovers it from WAL + snapshot, and finishes the
/// remaining devices against the recovered instance.
///
/// `kill_after_frames = None` is the uninterrupted reference: same
/// journaling, same dispatch path, no crash. The crash-recovery invariant
/// the suite asserts is that killed and uninterrupted runs of one spec are
/// indistinguishable in every deterministic observable, raw response bytes
/// included.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Store`] when the store
/// cannot persist or recover state.
pub fn run_fleet_durable(
    spec: &FleetSpec,
    kill_after_frames: Option<u64>,
) -> Result<DurableReport, DrmError> {
    run_fleet_durable_with(spec, Arc::new(RiStore::in_memory()), kill_after_frames)
}

/// [`run_fleet_durable`] over a caller-supplied (fresh, empty) store —
/// e.g. a `FileLog`-backed one, so the crash actually spans bytes on disk.
pub fn run_fleet_durable_with<L: Wal + 'static>(
    spec: &FleetSpec,
    store: Arc<RiStore<L>>,
    kill_after_frames: Option<u64>,
) -> Result<DurableReport, DrmError> {
    let workers = spec.workers.max(1);
    let started = Instant::now();

    // World setup: journal first, then genesis snapshot, then the catalogue
    // (whose entries flow into the log as events).
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
    let mut service = RiService::new("ri.fleet", spec.rsa_modulus_bits, &mut ca, &mut rng);
    let ri_id = service.id().to_string();
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    store.snapshot(&|| service.state_image())?;
    let catalog = build_catalog(spec, &service, &mut rng);
    let ca = Mutex::new(ca);
    let mut devices = provision_wire_devices(spec, &ca, workers)?;

    // The service "crashes" once its frame budget is exhausted: requests
    // from then on go unanswered, exactly like a power loss between two
    // acknowledged exchanges. (Torn mid-record writes are the store
    // corpus's department — see `tests/store_recovery.rs`.)
    let mut budget = kill_after_frames.unwrap_or(u64::MAX);
    let mut recoveries = 0u64;
    let mut events_replayed = 0u64;

    enum Wave {
        Hello,
        Register,
        Acquire(usize),
    }
    let mut waves = vec![Wave::Hello, Wave::Register];
    waves.extend((0..spec.acquisitions_per_device).map(Wave::Acquire));

    for wave in waves {
        loop {
            let complete = {
                let service = &service;
                let budget = &mut budget;
                let mut dispatch =
                    move |frames: &[Vec<u8>]| -> Result<Vec<Option<Vec<u8>>>, DrmError> {
                        let mut out = Vec::with_capacity(frames.len());
                        for frame in frames {
                            if *budget == 0 {
                                out.push(None);
                                continue;
                            }
                            *budget -= 1;
                            out.push(Some(service.dispatch_at(frame, now())));
                        }
                        Ok(out)
                    };
                match wave {
                    Wave::Hello => hello_wave(&mut devices, &mut dispatch)?,
                    Wave::Register => {
                        registration_wave(&mut devices, workers, now(), &mut dispatch)?
                    }
                    Wave::Acquire(round) => acquisition_wave(
                        &mut devices,
                        workers,
                        round,
                        &ri_id,
                        &catalog,
                        now(),
                        &mut dispatch,
                    )?,
                }
            };
            if complete {
                break;
            }
            // Power loss: the dead instance is dropped wholesale; nothing
            // survives but the store. Recover and re-enter the wave — the
            // progress flags make devices that were answered pre-crash
            // skip it.
            let (image, report) = store.load_with_report().map_err(DrmError::from)?;
            events_replayed += report.events_applied;
            service = RiService::from_image(image);
            service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
            recoveries += 1;
            budget = u64::MAX;
        }
    }
    let elapsed = started.elapsed();

    store.flush()?;
    store.snapshot(&|| service.state_image())?;
    let final_state = service.state_image();
    let (outcomes, ro_response_frames) = finish_wire_devices(devices);
    Ok(DurableReport {
        fleet: collect_report(outcomes, workers, elapsed, &service),
        recoveries,
        events_replayed,
        ro_response_frames,
        final_state,
    })
}

// ----- cluster mode ----------------------------------------------------------

/// One shard of a replicated cluster: a serving primary (journaled service +
/// log shipper) and its caught-up follower, plus the deposed node left
/// behind after a failover so misrouted clients can observe the
/// `NotPrimary` redirect.
struct ShardNode {
    service: Arc<RiService>,
    primary: Primary<MemLog>,
    follower: Option<Follower<MemLog>>,
    old_primary: Option<Primary<MemLog>>,
    epoch: u64,
    killed: bool,
}

/// The result of a [`run_fleet_cluster`] run.
///
/// Beyond the usual [`FleetReport`] (summed across shards), the cluster
/// driver reports the failover evidence the acceptance suite asserts on:
/// the killed primary's state image at the instant it died, the image the
/// promoted follower recovered, and the raw `RoResponse` frames — which
/// must be byte-identical to an unkilled run of the same topology.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The regular fleet report (outcomes, traces, cycles, counts summed
    /// over all shards).
    pub fleet: FleetReport,
    /// Number of shards the fleet was spread over.
    pub shards: u32,
    /// Devices routed to each shard (index order). Sums to the fleet size.
    pub shard_devices: Vec<usize>,
    /// How many primaries were killed and failed over.
    pub failovers: u64,
    /// How many `NotPrimary` redirects clients followed after failovers.
    pub redirects: u64,
    /// The serving epoch of each shard when the run finished.
    pub final_epochs: Vec<u64>,
    /// Raw `RoResponse` frames per device (sorted by device id, frames in
    /// acquisition order) — byte-identical across killed and unkilled runs
    /// of the same topology.
    pub ro_response_frames: RoResponseFrames,
    /// The killed primary's full state image at the instant of death
    /// (after its last journaled event). `None` when nothing was killed.
    pub pre_kill_image: Option<oma_drm::RiStateImage>,
    /// The state image the promoted follower recovered from its own log —
    /// the failover invariant is `promoted_image == pre_kill_image`,
    /// byte for byte.
    pub promoted_image: Option<oma_drm::RiStateImage>,
}

/// Maps a cluster-layer failure into the fleet driver's error type.
fn cluster_err(e: oma_cluster::ClusterError) -> DrmError {
    DrmError::Transport(format!("cluster replication failed: {e}"))
}

/// Builds one shard's world: a journaled service with a genesis snapshot
/// and the content catalogue in its log, wrapped as an epoch-1 primary,
/// plus a follower caught up through the catalogue events. Every shard is
/// built from the same spec seed, so all shards hold identical key
/// material and catalogues — only the device traffic they serve differs.
fn build_shard(spec: &FleetSpec) -> Result<ShardNode, DrmError> {
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
    let service = RiService::new("ri.fleet", spec.rsa_modulus_bits, &mut ca, &mut rng);
    let store = Arc::new(RiStore::in_memory());
    service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
    store.snapshot(&|| service.state_image())?;
    build_catalog(spec, &service, &mut rng);
    let primary = Primary::new("node.a", 1, store);
    let mut follower = Follower::in_memory("node.b", AckPolicy::OnFsync);
    oma_cluster::replicate(&primary, &mut follower).map_err(cluster_err)?;
    Ok(ShardNode {
        service: Arc::new(service),
        primary,
        follower: Some(follower),
        old_primary: None,
        epoch: 1,
        killed: false,
    })
}

/// Promotes the killed shard's follower into its new primary: the old
/// primary is fenced and kept around (so clients that still address it see
/// the `NotPrimary` redirect), the follower recovers through the ordinary
/// snapshot+replay path, and a fresh follower is bootstrapped from the new
/// primary via full snapshot catch-up.
fn fail_over(shard: &mut ShardNode, index: u32) -> Result<oma_drm::RiStateImage, DrmError> {
    let follower = shard
        .follower
        .take()
        .expect("every serving shard has a follower");
    let promoted = follower.promote(shard.epoch + 1).map_err(cluster_err)?;
    shard.primary.fence();
    let node_id = format!("node.{index}.promoted");
    shard.old_primary = Some(std::mem::replace(
        &mut shard.primary,
        Primary::new(&node_id, promoted.epoch, Arc::clone(&promoted.store)),
    ));
    shard.service = promoted.service;
    shard.epoch = promoted.epoch;
    let mut fresh = Follower::in_memory(&format!("node.{index}.standby"), AckPolicy::OnFsync);
    oma_cluster::replicate(&shard.primary, &mut fresh).map_err(cluster_err)?;
    shard.follower = Some(fresh);
    shard.killed = false;
    Ok(promoted.image)
}

/// Runs the fleet against a **replicated, sharded cluster**: `shards`
/// independent journaled [`RiService`] primaries, each shipping its WAL to
/// a follower after every served frame, with devices spread across shards
/// by the consistent-hash [`ClusterRouter`]. Frames are routed by the
/// device id extracted from each raw frame
/// ([`oma_cluster::frame_device_id`]) — the driver never peeks at client
/// state.
///
/// When `kill_after_frames` is `Some(k)`, the primary that would serve
/// frame `k+1` is killed mid-wave instead: its requests go unanswered, its
/// caught-up follower is promoted under the next epoch (the deposed
/// primary stays around, fenced), and the wave re-enters. The first frame
/// subsequently routed to that shard hits the deposed node, observes the
/// [`NotPrimary`](oma_drm::wire::RoapStatus::NotPrimary) redirect, and
/// retries against the promoted primary — the full client failover story.
///
/// Every deterministic observable of the run — per-device outcomes, raw
/// `RoResponse` bytes, final states — is identical whether or not a kill
/// happened, and the whole cluster run `matches` the single-service
/// sequential reference.
///
/// # Errors
///
/// See [`run_fleet`]; additionally [`DrmError::Transport`] when
/// replication or promotion fails (a [`ClusterError`](oma_cluster::ClusterError)
/// is reported in the message).
pub fn run_fleet_cluster(
    spec: &FleetSpec,
    shards: u32,
    kill_after_frames: Option<u64>,
) -> Result<ClusterReport, DrmError> {
    let shards = shards.max(1);
    let workers = spec.workers.max(1);
    let started = Instant::now();

    let router = ClusterRouter::new(shards);
    let mut nodes = Vec::with_capacity(shards as usize);
    for _ in 0..shards {
        nodes.push(build_shard(spec)?);
    }
    let ri_id = nodes[0].service.id().to_string();

    // Devices are provisioned against shard 0's CA; all shard worlds are
    // seed-identical, so its certificates verify everywhere.
    let mut rng = StdRng::seed_from_u64(spec.base_seed);
    let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
    let _ = RiService::new("ri.fleet", spec.rsa_modulus_bits, &mut ca, &mut rng);
    let catalog = {
        let scratch = RiService::from_image(nodes[0].service.state_image());
        build_catalog(spec, &scratch, &mut rng)
    };
    let ca = Mutex::new(ca);
    let mut devices = provision_wire_devices(spec, &ca, workers)?;

    let mut shard_devices = vec![0usize; shards as usize];
    for index in 0..spec.devices {
        let shard = router
            .route(&spec.device_id(index))
            .expect("non-empty ring");
        shard_devices[shard as usize] += 1;
    }

    let mut budget = kill_after_frames.unwrap_or(u64::MAX);
    let mut failovers = 0u64;
    let mut redirects = 0u64;
    let mut pre_kill_image = None;
    let mut promoted_image = None;

    enum Wave {
        Hello,
        Register,
        Acquire(usize),
    }
    let mut waves = vec![Wave::Hello, Wave::Register];
    waves.extend((0..spec.acquisitions_per_device).map(Wave::Acquire));

    for wave in waves {
        loop {
            let complete = {
                let nodes = &mut nodes;
                let router = &router;
                let budget = &mut budget;
                let pre_kill_image = &mut pre_kill_image;
                let redirects = &mut redirects;
                let mut dispatch =
                    move |frames: &[Vec<u8>]| -> Result<Vec<Option<Vec<u8>>>, DrmError> {
                        let mut out = Vec::with_capacity(frames.len());
                        for frame in frames {
                            let device = frame_device_id(frame).ok_or_else(|| {
                                DrmError::Transport("request frame without a device id".into())
                            })?;
                            let index = router.route(&device).expect("non-empty ring") as usize;
                            // A client that still addresses a deposed
                            // primary gets the NotPrimary redirect and
                            // retries against the shard's current primary.
                            let deposed = nodes[index]
                                .old_primary
                                .as_ref()
                                .is_some_and(|old| old.is_fenced());
                            if deposed {
                                let status = RoapPdu::Status(
                                    oma_drm::wire::RoapStatus::NotPrimary(index as u32),
                                )
                                .encode();
                                let RoapPdu::Status(status) =
                                    RoapPdu::decode(&status).map_err(DrmError::Roap)?
                                else {
                                    unreachable!("status frames decode to Status");
                                };
                                match status.into_result() {
                                    Err(DrmError::NotPrimary(shard)) => {
                                        debug_assert_eq!(shard as usize, index);
                                        *redirects += 1;
                                        nodes[index].old_primary = None;
                                    }
                                    other => {
                                        return Err(DrmError::Transport(format!(
                                            "expected a NotPrimary redirect, got {other:?}"
                                        )))
                                    }
                                }
                            }
                            let node = &mut nodes[index];
                            if node.killed {
                                out.push(None);
                                continue;
                            }
                            if pre_kill_image.is_none() {
                                if *budget == 0 {
                                    // The kill: exactly one primary — the
                                    // one serving this frame — dies with
                                    // everything it has journaled so far.
                                    // The rest of the cluster keeps going.
                                    node.killed = true;
                                    *pre_kill_image = Some(node.service.state_image());
                                    out.push(None);
                                    continue;
                                }
                                *budget -= 1;
                            }
                            let response = node.service.dispatch_at(frame, now());
                            // Synchronous log shipping: the follower holds
                            // every journaled event before the response is
                            // released — an acked frame can never outrun
                            // its replication.
                            let follower = node.follower.as_mut().expect("serving shard");
                            oma_cluster::replicate(&node.primary, follower).map_err(cluster_err)?;
                            out.push(Some(response));
                        }
                        Ok(out)
                    };
                match wave {
                    Wave::Hello => hello_wave(&mut devices, &mut dispatch)?,
                    Wave::Register => {
                        registration_wave(&mut devices, workers, now(), &mut dispatch)?
                    }
                    Wave::Acquire(round) => acquisition_wave(
                        &mut devices,
                        workers,
                        round,
                        &ri_id,
                        &catalog,
                        now(),
                        &mut dispatch,
                    )?,
                }
            };
            if complete {
                break;
            }
            // Failover: promote the caught-up follower of every killed
            // shard and re-enter the wave; already-answered devices skip.
            for (index, node) in nodes.iter_mut().enumerate() {
                if node.killed {
                    promoted_image = Some(fail_over(node, index as u32)?);
                    failovers += 1;
                }
            }
        }
    }
    let elapsed = started.elapsed();

    let (outcomes, ro_response_frames) = finish_wire_devices(devices);
    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    for outcome in &outcomes {
        traces.merge(&outcome.traces);
        cycles.merge(&outcome.cycles);
    }
    let fleet = FleetReport {
        workers,
        elapsed,
        registrations: nodes
            .iter()
            .map(|n| n.service.registered_count() as u64)
            .sum(),
        rights_objects: nodes.iter().map(|n| n.service.issued_ro_count()).sum(),
        devices: outcomes,
        traces,
        cycles,
    };
    Ok(ClusterReport {
        fleet,
        shards,
        shard_devices,
        failovers,
        redirects,
        final_epochs: nodes.iter().map(|n| n.epoch).collect(),
        ro_response_frames,
        pre_kill_image,
        promoted_image,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ids_are_fixed_width_and_seeds_distinct() {
        let spec = FleetSpec::new(4, 2);
        assert_eq!(spec.device_id(0), "dev-00000");
        assert_eq!(spec.device_id(123), "dev-00123");
        assert_eq!(spec.device_id(0).len(), spec.device_id(9_999).len());
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| spec.device_seed(i)).collect();
        assert_eq!(seeds.len(), 100);
    }

    #[test]
    fn smoke_fleet_registers_and_issues_deterministically() {
        let spec = FleetSpec::smoke();
        let run = run_fleet(&spec).unwrap();
        assert_eq!(run.registrations, spec.devices as u64);
        assert_eq!(
            run.rights_objects,
            (spec.devices * spec.acquisitions_per_device) as u64
        );
        assert!(run.duplicate_ro_ids().is_empty());
        for device in &run.devices {
            assert_eq!(device.ro_ids.len(), spec.acquisitions_per_device);
            assert!(!device.traces.registration.is_empty());
            assert!(device.cycles.registration > 0);
        }
        // Per-device RO ids depend only on the device, so the report is
        // reproducible run over run.
        let again = run_fleet(&spec).unwrap();
        assert!(run.matches(&again));
    }

    #[test]
    fn concurrent_matches_sequential_reference() {
        let spec = FleetSpec::new(6, 3);
        let concurrent = run_fleet(&spec).unwrap();
        let sequential = run_sequential(&spec).unwrap();
        assert_eq!(concurrent.workers, 3);
        assert_eq!(sequential.workers, 1);
        assert!(concurrent.matches(&sequential));
        assert_eq!(concurrent.cycles, sequential.cycles);
    }

    #[test]
    fn summary_carries_throughput() {
        let spec = FleetSpec::smoke();
        let run = run_fleet(&spec).unwrap();
        let summary = run.summary("smoke");
        assert_eq!(summary.devices, spec.devices);
        assert_eq!(summary.registrations, spec.devices as u64);
        assert!(summary.registrations_per_sec() > 0.0);
        assert!(summary.to_string().contains("ROs/s"));
    }

    #[test]
    fn wire_fleet_matches_in_proc_reference() {
        let spec = FleetSpec::new(5, 3).with_acquisitions(2);
        let wire = run_fleet_wire(&spec).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(wire.registrations, spec.devices as u64);
        assert!(
            wire.matches(&reference),
            "wire-mode outcomes must be byte-identical to direct calls"
        );
        assert!(wire.duplicate_ro_ids().is_empty());
    }

    #[test]
    fn tcp_fleet_matches_in_proc_reference() {
        let spec = FleetSpec::new(5, 3).with_acquisitions(2);
        let tcp = run_fleet_tcp(&spec).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(tcp.registrations, spec.devices as u64);
        assert!(
            tcp.matches(&reference),
            "loopback-TCP outcomes must be byte-identical to direct calls"
        );
        assert!(tcp.duplicate_ro_ids().is_empty());
    }

    #[test]
    fn obs_enabled_tcp_fleet_records_distributions_and_stays_deterministic() {
        let spec = FleetSpec::smoke();
        let obs = oma_obs::Obs::new();
        let run = run_fleet_tcp_obs(
            &spec,
            TcpBackend::ThreadPool,
            &ObsConfig::On(Arc::clone(&obs)),
        )
        .unwrap();
        // Observation must not perturb any deterministic observable.
        let reference = run_sequential(&spec).unwrap();
        assert!(run.matches(&reference));

        // One registration sample per device, one acquisition sample per
        // acquisition round, plus the server-side per-frame histograms.
        let registry = obs.registry();
        let registrations = registry
            .find_histogram("fleet_registration_nanos")
            .expect("fleet histograms registered");
        assert_eq!(registrations.snapshot().count(), spec.devices as u64);
        let acquisitions = registry
            .find_histogram("fleet_acquisition_nanos")
            .expect("fleet histograms registered");
        assert_eq!(
            acquisitions.snapshot().count(),
            (spec.devices * spec.acquisitions_per_device) as u64
        );
        let frames = registry
            .find_histogram("net_frame_nanos")
            .expect("server core registered its histograms");
        assert!(frames.snapshot().count() > 0);
    }

    #[test]
    fn tcp_fleet_single_worker_matches_concurrent_tcp() {
        // Connection churn and request interleaving across the socket must
        // not leak into any deterministic observable.
        let spec = FleetSpec::smoke();
        let concurrent = run_fleet_tcp(&spec).unwrap();
        let single = run_fleet_tcp(&spec.clone().with_workers(1)).unwrap();
        assert!(concurrent.matches(&single));
    }

    #[test]
    fn durable_uninterrupted_matches_plain_reference() {
        let spec = FleetSpec::smoke();
        let durable = run_fleet_durable(&spec, None).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(durable.recoveries, 0);
        assert!(
            durable.fleet.matches(&reference),
            "journaling must not change any deterministic observable"
        );
    }

    #[test]
    fn durable_kill_and_recover_is_indistinguishable() {
        let spec = FleetSpec::new(4, 2).with_acquisitions(2);
        let reference = run_fleet_durable(&spec, None).unwrap();
        // Kill mid-registration-wave: 4 hellos + 2 of 4 registrations.
        let killed = run_fleet_durable(&spec, Some(6)).unwrap();
        assert_eq!(killed.recoveries, 1);
        assert!(killed.events_replayed > 0);
        assert!(killed.fleet.matches(&reference.fleet));
        assert!(killed.fleet.duplicate_ro_ids().is_empty());
        assert_eq!(
            killed.ro_response_frames, reference.ro_response_frames,
            "RoResponse bytes must survive the crash byte-identically"
        );
        assert_eq!(
            killed.final_state, reference.final_state,
            "recovered run must converge to the identical service state"
        );
    }

    #[test]
    fn cluster_fleet_matches_sequential_reference() {
        let spec = FleetSpec::new(6, 3);
        let cluster = run_fleet_cluster(&spec, 3, None).unwrap();
        let reference = run_sequential(&spec).unwrap();
        assert_eq!(cluster.failovers, 0);
        assert_eq!(cluster.redirects, 0);
        assert_eq!(cluster.final_epochs, vec![1, 1, 1]);
        assert_eq!(cluster.shard_devices.iter().sum::<usize>(), spec.devices);
        assert!(
            cluster.shard_devices.iter().filter(|&&n| n > 0).count() > 1,
            "fleet must actually spread over shards: {:?}",
            cluster.shard_devices
        );
        assert!(
            cluster.fleet.matches(&reference),
            "sharding must not change any deterministic observable"
        );
        assert!(cluster.fleet.duplicate_ro_ids().is_empty());
    }

    #[test]
    fn cluster_kill_the_primary_is_indistinguishable() {
        let spec = FleetSpec::new(4, 2);
        let reference = run_fleet_cluster(&spec, 2, None).unwrap();
        // Kill the primary serving the 6th frame — mid-registration-wave.
        let killed = run_fleet_cluster(&spec, 2, Some(5)).unwrap();
        assert_eq!(killed.failovers, 1);
        assert!(killed.redirects >= 1, "the deposed node must redirect");
        assert!(killed.final_epochs.contains(&2), "one shard failed over");
        assert_eq!(
            killed.pre_kill_image, killed.promoted_image,
            "promoted follower must hold the dead primary's exact state"
        );
        assert!(killed.fleet.matches(&reference.fleet));
        assert_eq!(
            killed.ro_response_frames, reference.ro_response_frames,
            "RoResponse bytes must survive the failover byte-identically"
        );
    }

    #[test]
    fn duplicate_detector_reports_duplicates() {
        let spec = FleetSpec::smoke();
        let mut run = run_fleet(&spec).unwrap();
        let stolen = run.devices[0].ro_ids[0].clone();
        run.devices[1].ro_ids.push(stolen.clone());
        assert_eq!(run.duplicate_ro_ids(), vec![stolen]);
    }
}
