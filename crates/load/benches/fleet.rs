//! Fleet throughput bench: how fast one shared `RiService` can complete
//! full device life-cycles (Registration → Acquisition → Installation →
//! Consumption) as the worker count grows.
//!
//! Run with: `cargo bench -p oma-load`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_load::{run_fleet, run_fleet_tcp, run_fleet_wire, FleetSpec};

fn fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 2, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet(spec).expect("fleet run"));
        });
    }
    group.finish();
}

/// The same fleet driven through `dispatch_batch` waves. Since the client
/// redesign, the per-call path above also encodes/decodes every PDU, so the
/// delta between the two groups measures wave batching (one bulk dispatch
/// per protocol step versus one dispatch per exchange), not serialization.
fn fleet_wire_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_wire");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet_wire(spec).expect("wire fleet run"));
        });
    }
    group.finish();
}

/// The same fleet again over loopback TCP: every device life-cycle is a
/// fresh connection into the bounded-pool `RoapTcpServer`. The delta to the
/// `fleet` group prices the socket path — syscalls, framing reassembly and
/// connection churn — on top of identical protocol work.
fn fleet_tcp_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_tcp");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet_tcp(spec).expect("tcp fleet run"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fleet_throughput,
    fleet_wire_throughput,
    fleet_tcp_throughput
);
criterion_main!(benches);
