//! Fleet throughput bench: how fast one shared `RiService` can complete
//! full device life-cycles (Registration → Acquisition → Installation →
//! Consumption) as the worker count grows.
//!
//! Run with: `cargo bench -p oma-load`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_load::{run_fleet, FleetSpec};

fn fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 2, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet(spec).expect("fleet run"));
        });
    }
    group.finish();
}

criterion_group!(benches, fleet_throughput);
criterion_main!(benches);
