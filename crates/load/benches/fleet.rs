//! Fleet throughput bench: how fast one shared `RiService` can complete
//! full device life-cycles (Registration → Acquisition → Installation →
//! Consumption) as the worker count grows.
//!
//! Run with: `cargo bench -p oma-load`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_drm::roap::DeviceHello;
use oma_drm::{RiJournal, RiService};
use oma_load::{run_fleet, run_fleet_durable, run_fleet_tcp, run_fleet_wire, FleetSpec};
use oma_pki::{CertificationAuthority, Timestamp};
use oma_store::RiStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 2, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet(spec).expect("fleet run"));
        });
    }
    group.finish();
}

/// The same fleet driven through `dispatch_batch` waves. Since the client
/// redesign, the per-call path above also encodes/decodes every PDU, so the
/// delta between the two groups measures wave batching (one bulk dispatch
/// per protocol step versus one dispatch per exchange), not serialization.
fn fleet_wire_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_wire");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet_wire(spec).expect("wire fleet run"));
        });
    }
    group.finish();
}

/// The same fleet again over loopback TCP: every device life-cycle is a
/// fresh connection into the bounded-pool `RoapTcpServer`. The delta to the
/// `fleet` group prices the socket path — syscalls, framing reassembly and
/// connection churn — on top of identical protocol work.
fn fleet_tcp_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_tcp");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    for workers in [1usize, 4] {
        let spec = FleetSpec::new(devices, workers);
        group.bench_with_input(BenchmarkId::new("lifecycles", workers), &spec, |b, spec| {
            b.iter(|| run_fleet_tcp(spec).expect("tcp fleet run"));
        });
    }
    group.finish();
}

/// The price of durability: the same wire fleet with and without a
/// write-ahead journal under every service mutation. The delta per
/// life-cycle is the journaling overhead a registration + acquisition pays
/// (encode, CRC, append — `MemLog`, so the protocol cost, not the disk).
fn store_journaling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    let devices = 8;
    group.throughput(Throughput::Elements(devices as u64));
    let spec = FleetSpec::new(devices, 4);
    group.bench_with_input(BenchmarkId::new("lifecycles", "plain"), &spec, |b, spec| {
        b.iter(|| run_fleet_wire(spec).expect("wire fleet run"));
    });
    group.bench_with_input(
        BenchmarkId::new("lifecycles", "journaled"),
        &spec,
        |b, spec| {
            b.iter(|| run_fleet_durable(spec, None).expect("durable fleet run"));
        },
    );
    group.finish();
}

/// Recovery time as a function of the number of journal events replayed on
/// top of the snapshot — the boot-time bill for running with a sparse
/// snapshot cadence.
fn store_recovery_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    for events in [128u64, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(0xeca);
        let mut ca = CertificationAuthority::new("cmla", 384, &mut rng);
        let service = RiService::new("ri.bench", 384, &mut ca, &mut rng);
        let store = Arc::new(RiStore::in_memory());
        service.set_journal(Arc::clone(&store) as _);
        store.snapshot(&|| service.state_image()).expect("genesis");
        for i in 0..events {
            service.hello_at(&DeviceHello::new(&format!("dev-{i:06}")), Timestamp::new(0));
        }
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(BenchmarkId::new("replay", events), &store, |b, store| {
            b.iter(|| RiService::recover(&**store).expect("recover"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fleet_throughput,
    fleet_wire_throughput,
    fleet_tcp_throughput,
    store_journaling_overhead,
    store_recovery_time
);
criterion_main!(benches);
