//! Ablation: which single accelerator buys the most?
//!
//! The paper's discussion (§4) argues that an RSA accelerator is hard to
//! justify because PKI work is a fixed ~600 ms per license, while AES/SHA-1
//! acceleration scales with content size. This bench sweeps single-macro
//! partitionings (AES only, SHA-1 only, RSA only) and content sizes to
//! expose where each accelerator pays off — the design-space exploration a
//! SoC architect would run on top of the paper's model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oma_crypto::Algorithm;
use oma_perf::arch::{Architecture, Implementation, DEFAULT_CLOCK_HZ};
use oma_perf::cost::CostTable;
use oma_perf::usecase::UseCaseSpec;
use std::hint::black_box;

fn single_macro_variants() -> Vec<Architecture> {
    let aes_only = Architecture::custom(
        "AES-HW",
        |alg| match alg {
            Algorithm::AesEncrypt | Algorithm::AesDecrypt => Implementation::Hardware,
            _ => Implementation::Software,
        },
        DEFAULT_CLOCK_HZ,
    );
    let sha_only = Architecture::custom(
        "SHA-HW",
        |alg| match alg {
            Algorithm::Sha1 | Algorithm::HmacSha1 => Implementation::Hardware,
            _ => Implementation::Software,
        },
        DEFAULT_CLOCK_HZ,
    );
    let rsa_only = Architecture::custom(
        "RSA-HW",
        |alg| match alg {
            Algorithm::RsaPublic | Algorithm::RsaPrivate => Implementation::Hardware,
            _ => Implementation::Software,
        },
        DEFAULT_CLOCK_HZ,
    );
    vec![
        Architecture::software(),
        aes_only,
        sha_only,
        rsa_only,
        Architecture::full_hardware(),
    ]
}

fn ablation(c: &mut Criterion) {
    let table = CostTable::paper();
    let variants = single_macro_variants();

    // Print the sweep so the bench output doubles as the ablation table.
    println!("Single-accelerator ablation (total milliseconds per use case):");
    for spec in [
        UseCaseSpec::ringtone(),
        UseCaseSpec::music_player(),
        UseCaseSpec::new("Video Clip", 20 * 1024 * 1024, 2),
    ] {
        let traces = oma_perf::analytic::phase_traces(&spec);
        let total = traces.total(spec.accesses());
        print!("  {:<14}", spec.name());
        for arch in &variants {
            print!(" {:>8.1} ({})", arch.millis(&total, &table), arch.name());
        }
        println!();
    }

    let mut group = c.benchmark_group("ablation");
    for arch in &variants {
        group.bench_with_input(
            BenchmarkId::new("music_player", arch.name()),
            arch,
            |b, arch| {
                let spec = UseCaseSpec::music_player();
                let traces = oma_perf::analytic::phase_traces(&spec);
                let total = traces.total(spec.accesses());
                b.iter(|| arch.millis(black_box(&total), black_box(&table)))
            },
        );
    }

    // Content-size sweep under the hybrid architecture: where does the
    // consumption cost overtake the fixed PKI cost?
    for size_kb in [32u64, 256, 1024, 4096] {
        group.bench_with_input(
            BenchmarkId::new("hybrid_size_sweep_kb", size_kb),
            &size_kb,
            |b, &size_kb| {
                let spec = UseCaseSpec::new("sweep", (size_kb * 1024) as usize, 5);
                let arch = Architecture::hybrid();
                b.iter(|| {
                    let traces = oma_perf::analytic::phase_traces(black_box(&spec));
                    arch.millis(&traces.total(spec.accesses()), &table)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
