//! Threads vs event loop — the two TCP server cores serving the same
//! loopback fleet.
//!
//! Both backends answer byte-identical frames behind one `ServerConfig`,
//! so the only thing this group can measure is the serving architecture
//! itself: a bounded pool of blocking worker threads against a single
//! readiness event loop. The `BENCH_*.json` trajectory records the same
//! comparison as the `net` group (see `oma_bench::snapshot::NetBench`);
//! this bench is the interactive, criterion-shaped view of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_load::{run_fleet_tcp_with, FleetSpec, TcpBackend};
use std::hint::black_box;

fn server_cores(c: &mut Criterion) {
    let spec = FleetSpec::smoke();
    let mut group = c.benchmark_group("net/server_cores");
    group.throughput(Throughput::Elements(spec.devices as u64));
    for (name, backend) in [
        ("threads", TcpBackend::ThreadPool),
        ("event_loop", TcpBackend::EventLoop),
    ] {
        group.bench_with_input(BenchmarkId::new("fleet", name), &backend, |b, backend| {
            b.iter(|| run_fleet_tcp_with(black_box(&spec), *backend).expect("fleet run"))
        });
    }
    group.finish();
}

criterion_group!(benches, server_cores);
criterion_main!(benches);
