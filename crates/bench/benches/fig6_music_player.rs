//! Figure 6 — total processing time of the SW, SW/HW and HW architecture
//! variants in the Music Player use case (3.5 MB DCF, five playbacks).
//!
//! Two measurements per variant:
//!
//! * `model/` — evaluating the analytic cost model (what the figure plots),
//! * `protocol/` — actually running the DRM Agent consumption pipeline on a
//!   scaled-down track with the real software crypto of this repository, as
//!   a host-measured sanity check of the model's shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_bench::{Experiment, FIGURE6_PAPER_MS};
use oma_drm::{ContentIssuer, DrmAgent, Permission, RightsIssuer, RightsTemplate};
use oma_perf::usecase::UseCaseSpec;
use oma_pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn model(c: &mut Criterion) {
    let experiment = Experiment::new();
    let figure = experiment.figure6();
    println!("{figure}");
    for (variant, expected) in FIGURE6_PAPER_MS {
        println!(
            "  paper {variant:<6} {expected:>7.0} ms | model {:>8.1} ms",
            figure.total_millis(variant).unwrap()
        );
    }

    let mut group = c.benchmark_group("fig6/model");
    for arch in &experiment.variants {
        group.bench_with_input(
            BenchmarkId::new("evaluate", arch.name()),
            arch,
            |b, arch| {
                let traces = oma_perf::analytic::phase_traces(&UseCaseSpec::music_player());
                let total = traces.total(UseCaseSpec::music_player().accesses());
                b.iter(|| arch.millis(black_box(&total), black_box(&experiment.table)))
            },
        );
    }
    group.finish();
}

fn protocol(c: &mut Criterion) {
    // A 256 KiB track stands in for the 3.5 MB one so the bench stays fast;
    // consumption cost is linear in content size.
    const TRACK_LEN: usize = 256 * 1024;
    let mut rng = StdRng::seed_from_u64(0xf166);
    let mut ca = CertificationAuthority::new("cmla", 1024, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", 1024, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut agent = DrmAgent::new("bench-terminal", 1024, &mut ca, &mut rng);
    let content = vec![0xddu8; TRACK_LEN];
    let (dcf, cek) = ci.package(&content, "cid:track", &mut rng);
    ri.add_content(
        "cid:track",
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );
    let now = Timestamp::new(1_000);
    agent
        .register_with(ri.service(), now)
        .expect("registration");
    let response = agent
        .acquire_rights_with(ri.service(), "cid:track", now)
        .expect("acquisition");
    let ro_id = agent.install_rights(&response, now).expect("installation");

    let mut group = c.benchmark_group("fig6/protocol");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(TRACK_LEN as u64));
    group.bench_function("consume_music_track_256k", |b| {
        b.iter(|| {
            agent
                .consume(black_box(&ro_id), black_box(&dcf), Permission::Play, now)
                .expect("consumption")
        })
    });
    group.finish();
}

criterion_group!(benches, model, protocol);
criterion_main!(benches);
