//! Table 1 — per-algorithm execution cost.
//!
//! The paper's Table 1 reports cycles per 128-bit block (symmetric/hash) and
//! per 1024-bit operation (RSA) for software and hardware realisations. The
//! hardware numbers are vendor figures that cannot be re-measured on a host
//! CPU, so this bench does two things:
//!
//! 1. benchmarks the *real software implementations* of this repository on
//!    the host, so the relative shape (AES ≈ SHA-1 per block ≪ RSA public ≪
//!    RSA private) can be compared against the table, and
//! 2. benchmarks the model evaluation itself (costing a trace under Table 1),
//!    which is what every other experiment builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::{cbc, hmac, keywrap, pss, sha1};
use oma_perf::cost::CostTable;
use oma_perf::Architecture;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn software_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/software");
    let data_16k = vec![0xa5u8; 16 * 1024];
    let key = [0x2bu8; 16];
    let iv = [0x01u8; 16];

    group.throughput(Throughput::Bytes(data_16k.len() as u64));
    group.bench_function("aes128_cbc_encrypt_16k", |b| {
        b.iter(|| cbc::encrypt(black_box(&key), black_box(&iv), black_box(&data_16k)).unwrap())
    });
    let ciphertext = cbc::encrypt(&key, &iv, &data_16k).unwrap();
    group.bench_function("aes128_cbc_decrypt_16k", |b| {
        b.iter(|| cbc::decrypt(black_box(&key), black_box(&iv), black_box(&ciphertext)).unwrap())
    });
    group.bench_function("sha1_16k", |b| b.iter(|| sha1::sha1(black_box(&data_16k))));
    group.bench_function("hmac_sha1_16k", |b| {
        b.iter(|| hmac::hmac_sha1(black_box(&key), black_box(&data_16k)))
    });
    group.finish();

    let mut group = c.benchmark_group("table1/software_keyops");
    group.sample_size(20);
    group.bench_function("aes128_keywrap_256bit", |b| {
        b.iter(|| keywrap::wrap(black_box(&key), black_box(&[0x11u8; 32])).unwrap())
    });

    let mut rng = StdRng::seed_from_u64(0xbe9c);
    let pair = RsaKeyPair::generate(1024, &mut rng);
    let message = vec![0x42u8; 128];
    let signature = pss::sign(pair.private(), &message, &mut rng).unwrap();
    group.bench_function("rsa1024_private_op_pss_sign", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| pss::sign(pair.private(), black_box(&message), &mut rng).unwrap())
    });
    group.bench_function("rsa1024_public_op_pss_verify", |b| {
        b.iter(|| pss::verify(pair.public(), black_box(&message), black_box(&signature)))
    });
    group.finish();
}

fn model_costing(c: &mut Criterion) {
    let table = CostTable::paper();
    let mut group = c.benchmark_group("table1/model");
    for blocks in [1u64, 1_000, 218_751] {
        group.bench_with_input(
            BenchmarkId::new("cost_trace", blocks),
            &blocks,
            |b, &blocks| {
                let mut trace = oma_crypto::OpTrace::new();
                trace.record(oma_crypto::Algorithm::AesDecrypt, 1, blocks);
                trace.record(oma_crypto::Algorithm::Sha1, 1, blocks);
                trace.record(oma_crypto::Algorithm::RsaPrivate, 3, 3);
                let variants = Architecture::standard_variants();
                b.iter(|| {
                    variants
                        .iter()
                        .map(|arch| arch.cycles(black_box(&trace), black_box(&table)))
                        .sum::<u64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, software_primitives, model_costing);
criterion_main!(benches);
