//! Figure 5 — relative importance of the cryptographic algorithms in the
//! pure-software variant, for both use cases.
//!
//! The bench measures the breakdown computation and, on every run, prints
//! the resulting percentage series so the figure can be read off the bench
//! output directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oma_perf::cost::CostTable;
use oma_perf::report;
use oma_perf::usecase::UseCaseSpec;
use std::hint::black_box;

fn breakdown(c: &mut Criterion) {
    let table = CostTable::paper();

    // Print the figure series once so the bench output doubles as the figure.
    for series in report::figure5(&table) {
        println!("{series}");
    }

    let mut group = c.benchmark_group("fig5");
    for spec in UseCaseSpec::paper_use_cases() {
        group.bench_with_input(
            BenchmarkId::new("algorithm_breakdown", spec.name()),
            &spec,
            |b, spec| b.iter(|| report::algorithm_breakdown(black_box(spec), black_box(&table))),
        );
    }
    group.finish();
}

criterion_group!(benches, breakdown);
criterion_main!(benches);
