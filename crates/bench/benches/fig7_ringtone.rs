//! Figure 7 — total processing time of the SW, SW/HW and HW architecture
//! variants in the Ringtone use case (30 KB DCF, 25 accesses).
//!
//! As for Figure 6, the model evaluation is benchmarked alongside a real
//! protocol run at the actual ringtone size (30 KB is small enough to run
//! end-to-end, registration included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oma_bench::{Experiment, FIGURE7_PAPER_MS};
use oma_perf::runner;
use oma_perf::usecase::UseCaseSpec;
use std::hint::black_box;

fn model(c: &mut Criterion) {
    let experiment = Experiment::new();
    let figure = experiment.figure7();
    println!("{figure}");
    for (variant, expected) in FIGURE7_PAPER_MS {
        println!(
            "  paper {variant:<6} {expected:>7.0} ms | model {:>8.1} ms",
            figure.total_millis(variant).unwrap()
        );
    }

    let mut group = c.benchmark_group("fig7/model");
    for arch in &experiment.variants {
        group.bench_with_input(
            BenchmarkId::new("evaluate", arch.name()),
            arch,
            |b, arch| {
                let spec = UseCaseSpec::ringtone();
                let traces = oma_perf::analytic::phase_traces(&spec);
                let total = traces.total(spec.accesses());
                b.iter(|| arch.millis(black_box(&total), black_box(&experiment.table)))
            },
        );
    }
    group.finish();
}

fn protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/protocol");
    group.sample_size(10);
    // Full life-cycle at the real ringtone size with 512-bit test keys
    // (key generation dominates 1024-bit runs and is not part of the
    // phases the paper models).
    let spec = UseCaseSpec::ringtone().with_rsa_modulus_bits(512);
    group.bench_function("full_lifecycle_ringtone_30k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            runner::measure_use_case(black_box(&spec), seed).expect("protocol run")
        })
    });
    group.finish();
}

criterion_group!(benches, model, protocol);
criterion_main!(benches);
