//! `repro` — prints every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro               # everything
//! repro table1        # Table 1 only
//! repro fig5          # Figure 5 only
//! repro fig6          # Figure 6 only
//! repro fig7          # Figure 7 only
//! repro energy        # §3 energy estimate
//! repro measured      # measured (protocol-run) cross-check of the model
//!
//! repro --emit-bench [--smoke] [PATH]      # write a BENCH_*.json snapshot
//! repro --check-bench BASELINE FRESH       # fail on throughput regression
//! repro --emit-trace [PATH]                # dump a fleet span trace (JSONL)
//! ```
//!
//! `--emit-bench` writes a performance snapshot (default path
//! `BENCH_pr10.json`); `--smoke` limits it to the small CI-sized section.
//! `--check-bench` compares two snapshots and exits non-zero when the fresh
//! one's smoke fleet throughput regressed beyond the tolerated drop, or
//! when the fresh snapshot's observability-overhead ratio fell below the
//! CI floor. `--emit-trace` runs an obs-enabled smoke fleet and writes the
//! per-frame span ring as JSON Lines (one span per served frame).

use oma_bench::snapshot::{check_regression, BenchSnapshot};
use oma_bench::{Experiment, FIGURE6_PAPER_MS, FIGURE7_PAPER_MS};
use oma_perf::energy::EnergyModel;
use oma_perf::report;
use oma_perf::runner;
use oma_perf::usecase::UseCaseSpec;

fn print_table1(experiment: &Experiment) {
    println!("=== Table 1: execution times per cryptographic algorithm ===");
    print!("{}", report::table1(&experiment.table));
    println!();
}

fn print_fig5(experiment: &Experiment) {
    println!("=== Figure 5: relative importance of cryptographic algorithms (SW variant) ===");
    for breakdown in experiment.figure5() {
        print!("{breakdown}");
    }
    println!();
}

fn print_comparison(
    title: &str,
    comparison: &oma_perf::report::ArchitectureComparison,
    paper: &[(&str, f64)],
) {
    println!("=== {title} ===");
    print!("{comparison}");
    println!("Paper reference values:");
    for (variant, expected) in paper {
        let actual = comparison.total_millis(variant).unwrap_or(f64::NAN);
        println!(
            "  {:<8} paper {:>8.0} ms   model {:>8.1} ms   ({:+.1} %)",
            variant,
            expected,
            actual,
            (actual - expected) / expected * 100.0
        );
    }
    println!();
}

fn print_energy(experiment: &Experiment) {
    println!("=== Energy estimate (energy proportional to cycles, §3) ===");
    for spec in UseCaseSpec::paper_use_cases() {
        let energy = report::energy_comparison(
            &spec,
            &experiment.table,
            &experiment.variants,
            &EnergyModel::proportional(),
        );
        print!("{energy}");
    }
    println!("With 2x-more-efficient hardware macros (the paper's future-work hypothesis):");
    for spec in UseCaseSpec::paper_use_cases() {
        let energy = report::energy_comparison(
            &spec,
            &experiment.table,
            &experiment.variants,
            &EnergyModel::with_hardware_factor(0.5),
        );
        print!("{energy}");
    }
    println!();
}

fn print_measured(experiment: &Experiment) {
    println!("=== Measured cross-check: protocol runs on each variant's crypto backend ===");
    println!("(512-bit test keys; the cost model charges RSA per 1024-bit operation");
    println!(" regardless, exactly as the paper's Table 1 does)\n");
    let spec = UseCaseSpec::ringtone().with_rsa_modulus_bits(oma_bench::MEASURED_RSA_BITS);
    match runner::measure_use_case(&spec, 42) {
        Ok(run) => {
            let total = run.traces.total(spec.accesses());
            println!("{:<26} {:>12} {:>14}", "Algorithm", "Invocations", "Blocks");
            for (alg, count) in total.iter() {
                println!(
                    "{:<26} {:>12} {:>14}",
                    alg.label(),
                    count.invocations,
                    count.blocks
                );
            }
            println!();
        }
        Err(e) => println!("protocol run failed: {e}"),
    }
    for (name, spec) in [
        ("Figure 6 (Music Player)", UseCaseSpec::music_player()),
        ("Figure 7 (Ringtone)", UseCaseSpec::ringtone()),
    ] {
        match experiment.consistency(&spec, 42) {
            Ok(consistency) => {
                println!("--- {name}: measured backends vs analytic model ---");
                print!("{consistency}");
                println!(
                    "  max deviation {:.2} % ({})\n",
                    consistency.max_relative_error() * 100.0,
                    if consistency.agrees_within(0.10) {
                        "agrees"
                    } else {
                        "DISAGREES"
                    }
                );
            }
            Err(e) => println!("{name}: measured run failed: {e}"),
        }
    }
}

/// `repro --emit-bench [--smoke] [PATH]`: measure and write a snapshot.
fn emit_bench(args: &[String]) -> Result<(), String> {
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("BENCH_pr10.json");
    // "BENCH_pr10.json" -> trajectory label "pr10".
    let label = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .map(|s| s.strip_prefix("BENCH_").unwrap_or(s))
        .unwrap_or("bench");
    eprintln!(
        "measuring {} bench snapshot '{label}'...",
        if smoke_only { "smoke" } else { "smoke + full" }
    );
    let snapshot = BenchSnapshot::capture(label, smoke_only)?;
    std::fs::write(path, snapshot.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    let section = snapshot.full.as_ref().unwrap_or(&snapshot.smoke);
    println!(
        "wrote {path}: rsa private {:.0} us ({}x vs per-call contexts), fleet {:.1} reg/s, journaling x{:.2}, replay {:.0} us",
        section.rsa.private_op_micros,
        (section.rsa.private_speedup * 10.0).round() / 10.0,
        section.fleet.registrations_per_sec,
        section.durability.journaling_overhead_ratio,
        section.durability.wal_replay_micros,
    );
    if let Some(cluster) = &section.cluster {
        println!(
            "  cluster: {} shards, replication {:.0} rec/s, failover {:.0} us, failed-over fleet {:.1} reg/s",
            cluster.shards,
            cluster.replication_records_per_sec,
            cluster.failover_micros,
            cluster.fleet_registrations_per_sec,
        );
    }
    if let Some(session) = &section.session {
        println!(
            "  session: {} concurrent machines, {} states ({} distinct) at {:.0} states/s, {} fuzz attacks rejected",
            session.sessions,
            session.states_explored,
            session.distinct_states,
            session.states_per_sec,
            session.fuzz_attacks,
        );
    }
    if let Some(latency) = &section.latency {
        println!(
            "  latency: registration p50/p95/p99 {:.0}/{:.0}/{:.0} us (threads) {:.0}/{:.0}/{:.0} us (event), acquisition p50 {:.0}/{:.0} us, obs overhead ratio {:.3}",
            latency.threads_registration_p50_micros,
            latency.threads_registration_p95_micros,
            latency.threads_registration_p99_micros,
            latency.event_registration_p50_micros,
            latency.event_registration_p95_micros,
            latency.event_registration_p99_micros,
            latency.threads_acquisition_p50_micros,
            latency.event_acquisition_p50_micros,
            latency.obs_overhead_ratio,
        );
    }
    Ok(())
}

/// `repro --emit-trace [PATH]`: run an obs-enabled smoke fleet and write
/// the span ring as JSON Lines — the CI artifact that shows what one
/// serving window looked like, frame by frame.
fn emit_trace(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("fleet_trace.jsonl");
    let obs = oma_obs::Obs::new();
    let spec = oma_load::FleetSpec::smoke();
    oma_load::run_fleet_tcp_obs(
        &spec,
        oma_load::TcpBackend::ThreadPool,
        &oma_obs::ObsConfig::On(std::sync::Arc::clone(&obs)),
    )
    .map_err(|e| format!("trace fleet failed: {e}"))?;
    let spans = obs.spans();
    std::fs::write(path, spans.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {path}: {} spans ({} recorded, {} dropped)",
        spans.spans().len(),
        spans.recorded(),
        spans.dropped()
    );
    Ok(())
}

/// `repro --check-bench BASELINE FRESH`: compare two snapshot files.
fn check_bench(args: &[String]) -> Result<(), String> {
    let [baseline_path, fresh_path] = args else {
        return Err("usage: repro --check-bench <baseline.json> <fresh.json>".to_string());
    };
    let load = |path: &String| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))
            .and_then(|doc| BenchSnapshot::from_json(&doc).map_err(|e| format!("{path}: {e}")))
    };
    let verdict = check_regression(&load(baseline_path)?, &load(fresh_path)?)?;
    println!("{verdict}");
    Ok(())
}

fn main() {
    let selection: Vec<String> = std::env::args().skip(1).collect();
    if selection.first().map(String::as_str) == Some("--emit-bench") {
        if let Err(e) = emit_bench(&selection[1..]) {
            eprintln!("emit-bench failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if selection.first().map(String::as_str) == Some("--check-bench") {
        if let Err(e) = check_bench(&selection[1..]) {
            eprintln!("check-bench failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if selection.first().map(String::as_str) == Some("--emit-trace") {
        if let Err(e) = emit_trace(&selection[1..]) {
            eprintln!("emit-trace failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let experiment = Experiment::new();
    let want = |name: &str| selection.is_empty() || selection.iter().any(|s| s == name);

    if want("table1") {
        print_table1(&experiment);
    }
    if want("fig5") {
        print_fig5(&experiment);
    }
    if want("fig6") {
        print_comparison(
            "Figure 6: Music Player use case, execution time per architecture variant",
            &experiment.figure6(),
            &FIGURE6_PAPER_MS,
        );
    }
    if want("fig7") {
        print_comparison(
            "Figure 7: Ringtone use case, execution time per architecture variant",
            &experiment.figure7(),
            &FIGURE7_PAPER_MS,
        );
    }
    if want("energy") {
        print_energy(&experiment);
    }
    if want("measured") {
        print_measured(&experiment);
    }
}
