//! Shared helpers for the benchmark harness and the `repro` binary.
//!
//! The benches in `benches/` regenerate, one per file, every table and
//! figure of the paper's evaluation:
//!
//! | Bench | Paper artefact |
//! |---|---|
//! | `table1_algorithms` | Table 1 — per-algorithm cycle costs (model) plus host-measured software throughput of the from-scratch implementations |
//! | `fig5_breakdown` | Figure 5 — relative share of processing time per algorithm |
//! | `fig6_music_player` | Figure 6 — SW / SW+HW / HW totals, Music Player |
//! | `fig7_ringtone` | Figure 7 — SW / SW+HW / HW totals, Ringtone |
//! | `ablation_partitionings` | sensitivity study over single-accelerator partitionings |
//!
//! The `repro` binary prints the same rows/series as text so the numbers can
//! be compared against the paper without running Criterion.

pub mod snapshot;

use oma_drm::DrmError;
use oma_perf::arch::Architecture;
use oma_perf::cost::CostTable;
use oma_perf::report::{self, AlgorithmBreakdown, ArchitectureComparison, ModelConsistency};
use oma_perf::usecase::UseCaseSpec;

/// RSA modulus used by the *measured* experiments: small test keys keep the
/// runs fast, while the cost model still charges per 1024-bit operation
/// exactly as the paper's Table 1 does.
pub const MEASURED_RSA_BITS: usize = 512;

/// The model inputs every experiment shares.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The paper's Table 1 cost model.
    pub table: CostTable,
    /// The three architecture variants of the evaluation.
    pub variants: Vec<Architecture>,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            table: CostTable::paper(),
            variants: Architecture::standard_variants(),
        }
    }
}

impl Experiment {
    /// Creates the default experiment setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Figure 6: the Music Player architecture comparison.
    pub fn figure6(&self) -> ArchitectureComparison {
        report::architecture_comparison(&UseCaseSpec::music_player(), &self.table, &self.variants)
    }

    /// Figure 7: the Ringtone architecture comparison.
    pub fn figure7(&self) -> ArchitectureComparison {
        report::architecture_comparison(&UseCaseSpec::ringtone(), &self.table, &self.variants)
    }

    /// Figure 5: both per-algorithm breakdowns.
    pub fn figure5(&self) -> Vec<AlgorithmBreakdown> {
        report::figure5(&self.table)
    }

    /// Figure 6 from *measured* protocol runs: the DRM Agent executes on
    /// each variant's crypto backend and the backend's cycle bill is
    /// reported.
    ///
    /// # Errors
    ///
    /// Propagates any [`DrmError`] from the protocol runs.
    pub fn measured_figure6(&self, seed: u64) -> Result<ArchitectureComparison, DrmError> {
        let spec = UseCaseSpec::music_player().with_rsa_modulus_bits(MEASURED_RSA_BITS);
        report::measured_architecture_comparison(&spec, &self.table, &self.variants, seed)
    }

    /// Figure 7 from *measured* protocol runs.
    ///
    /// # Errors
    ///
    /// Propagates any [`DrmError`] from the protocol runs.
    pub fn measured_figure7(&self, seed: u64) -> Result<ArchitectureComparison, DrmError> {
        let spec = UseCaseSpec::ringtone().with_rsa_modulus_bits(MEASURED_RSA_BITS);
        report::measured_architecture_comparison(&spec, &self.table, &self.variants, seed)
    }

    /// The measured-vs-analytic cross-check for one use case (runs the
    /// measured experiment, evaluates the analytic model, compares).
    ///
    /// # Errors
    ///
    /// Propagates any [`DrmError`] from the protocol runs.
    pub fn consistency(&self, spec: &UseCaseSpec, seed: u64) -> Result<ModelConsistency, DrmError> {
        let spec = spec.clone().with_rsa_modulus_bits(MEASURED_RSA_BITS);
        let measured =
            report::measured_architecture_comparison(&spec, &self.table, &self.variants, seed)?;
        let analytic = report::architecture_comparison(&spec, &self.table, &self.variants);
        Ok(report::consistency_check(&measured, &analytic))
    }
}

/// Paper reference values (milliseconds) for Figure 6 (Music Player).
pub const FIGURE6_PAPER_MS: [(&str, f64); 3] = [("SW", 7_730.0), ("SW/HW", 800.0), ("HW", 190.0)];

/// Paper reference values (milliseconds) for Figure 7 (Ringtone).
pub const FIGURE7_PAPER_MS: [(&str, f64); 3] = [("SW", 900.0), ("SW/HW", 620.0), ("HW", 12.0)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_reproduces_both_figures() {
        let experiment = Experiment::new();
        let fig6 = experiment.figure6();
        let fig7 = experiment.figure7();
        for (variant, expected) in FIGURE6_PAPER_MS {
            let actual = fig6.total_millis(variant).unwrap();
            assert!(
                (actual - expected).abs() / expected < 0.15,
                "{variant}: {actual} vs {expected}"
            );
        }
        for (variant, expected) in FIGURE7_PAPER_MS {
            let actual = fig7.total_millis(variant).unwrap();
            assert!(
                (actual - expected).abs() / expected < 0.15,
                "{variant}: {actual} vs {expected}"
            );
        }
        assert_eq!(experiment.figure5().len(), 2);
    }

    #[test]
    fn measured_ringtone_matches_paper_and_analytic() {
        let experiment = Experiment::new();
        let measured = experiment.measured_figure7(3).expect("measured run");
        // Measured per-backend runs land on the paper's Figure 7 values too.
        for (variant, expected) in FIGURE7_PAPER_MS {
            let actual = measured.total_millis(variant).unwrap();
            assert!(
                (actual - expected).abs() / expected < 0.15,
                "measured {variant}: {actual} vs paper {expected}"
            );
        }
        let consistency = experiment
            .consistency(&UseCaseSpec::ringtone(), 3)
            .expect("consistency run");
        assert!(
            consistency.agrees_within(0.10),
            "measured vs analytic:\n{consistency}"
        );
    }
}
