//! `BENCH_*.json` performance snapshots: the repo's perf trajectory.
//!
//! Every PR that touches the hot path lands one `BENCH_prN.json` at the repo
//! root, emitted by `repro --emit-bench`. The file carries two sections:
//!
//! * `smoke` — a tiny fleet ([`FleetSpec::smoke`]) plus a short RSA latency
//!   probe. Always present; CI re-measures this section and compares
//!   throughput against the committed baseline.
//! * `full` — a larger fleet and a longer RSA probe. Present in committed
//!   snapshots (emitted without `--smoke`), absent from CI smoke runs.
//!
//! Each section is a flat JSON object (see [`BenchSection::to_json`]):
//! RSA op latencies with a seed-equivalent baseline and the resulting
//! speedup, wire-fleet throughput with per-phase cycle totals, the
//! durability costs (journaling overhead ratio, WAL replay time), the
//! nested `net` group (threads-vs-event-loop serving comparison), the
//! nested `cluster` group (WAL replication throughput, failover latency
//! and sharded-fleet throughput with one mid-wave primary kill), the
//! nested `session` group (interleaving-explorer throughput) and the
//! nested `latency` group (per-phase latency quantiles from the `oma-obs`
//! histograms, plus the obs-on/obs-off throughput ratio).
//!
//! The emit/bless flow and the regression gate are documented in the
//! repository README under "Performance trajectory".

use oma_bignum::{BigUint, Montgomery};
use oma_cluster::{replicate, AckPolicy, Follower, Primary};
use oma_crypto::rsa::RsaKeyPair;
use oma_drm::{DrmAgent, RiJournal, RiService};
use oma_explore::{explore, fuzz, ExploreConfig, Faults};
use oma_load::{
    run_fleet_cluster, run_fleet_durable_with, run_fleet_tcp_obs, run_fleet_tcp_with,
    run_fleet_wire, FleetSpec, TcpBackend,
};
use oma_obs::{Obs, ObsConfig};
use oma_pki::{CertificationAuthority, Timestamp};
use oma_store::RiStore;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Version of the `BENCH_*.json` schema this module writes. Readers accept
/// any schema up to this one: schema 1 documents predate the `net`
/// (threads-vs-event-loop) group, schema 2 documents predate the `cluster`
/// (replication/failover) group, schema 3 documents predate the `session`
/// (interleaving-explorer) group, schema 4 documents predate the `latency`
/// (per-phase latency distribution / observability overhead) group — all
/// parse with the missing groups absent.
pub const BENCH_SCHEMA: u64 = 5;

/// Modulus size of the RSA latency probe. The paper's Table 1 charges RSA
/// per 1024-bit operation, so the trajectory tracks the op the cost model
/// actually bills (the fleet sections keep their own test-sized keys).
pub const BENCH_RSA_BITS: usize = 1024;

/// Largest tolerated relative drop in smoke fleet throughput before
/// [`check_regression`] fails (the CI gate).
pub const MAX_THROUGHPUT_DROP: f64 = 0.10;

/// Measured RSA primitive latencies, against a seed-equivalent baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RsaLatencies {
    /// Modulus size the probe ran at.
    pub modulus_bits: u64,
    /// Mean `rsadp` latency with cached contexts + fixed-window modpow.
    pub private_op_micros: f64,
    /// Mean `rsadp` latency the way the seed computed it: both CRT
    /// Montgomery contexts rebuilt per call, bit-at-a-time ladder.
    pub private_baseline_micros: f64,
    /// `private_baseline_micros / private_op_micros`.
    pub private_speedup: f64,
    /// Mean `rsaep` latency with the cached modulus context.
    pub public_op_micros: f64,
}

impl RsaLatencies {
    /// Times `iters` private-key operations on a fresh `bits`-bit key pair,
    /// then a quarter as many seed-equivalent baseline operations (the
    /// baseline is slow — that is the point).
    pub fn measure(bits: usize, iters: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(0xbe7c);
        let pair = RsaKeyPair::generate(bits, &mut rng);
        let m = BigUint::from_bytes_be(&[0x42u8; 16]);
        let c = pair.public().rsaep(&m).expect("message below modulus");
        pair.private().precompute();
        pair.public().precompute();

        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(pair.private().rsadp(&c).expect("ciphertext below modulus"));
        }
        let private_op_micros = started.elapsed().as_secs_f64() * 1e6 / f64::from(iters);

        // Seed-equivalent baseline: rebuild both CRT contexts (one full
        // division each for R²) and run the pre-optimization bit-at-a-time
        // ladder, exactly what `rsadp` cost before contexts were cached.
        let (p, q) = pair.private().primes();
        let d = pair.private().d();
        let one = BigUint::one();
        let dp = d.rem_of(&(p - &one));
        let dq = d.rem_of(&(q - &one));
        let qinv = q.mod_inverse(p).expect("p and q are distinct primes");
        let baseline_iters = (iters / 4).max(1);
        let mut check = BigUint::zero();
        let started = Instant::now();
        for _ in 0..baseline_iters {
            let mp = Montgomery::new(p.clone()).expect("odd prime");
            let mq = Montgomery::new(q.clone()).expect("odd prime");
            let m1 = mp.modpow_bitwise(&c, &dp);
            let m2 = mq.modpow_bitwise(&c, &dq);
            let h = m1.sub_mod(&m2.rem_of(p), p).mul_mod(&qinv, p);
            check = &m2 + &(&h * q);
        }
        let private_baseline_micros =
            started.elapsed().as_secs_f64() * 1e6 / f64::from(baseline_iters);
        assert_eq!(check, m, "baseline CRT disagrees with the optimized path");

        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(pair.public().rsaep(&m).expect("message below modulus"));
        }
        let public_op_micros = started.elapsed().as_secs_f64() * 1e6 / f64::from(iters);

        RsaLatencies {
            modulus_bits: bits as u64,
            private_op_micros,
            private_baseline_micros,
            private_speedup: private_baseline_micros / private_op_micros.max(f64::EPSILON),
            public_op_micros,
        }
    }
}

/// Wire-fleet throughput and per-phase cycle totals.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBench {
    /// Devices in the fleet.
    pub devices: u64,
    /// Worker threads driving them.
    pub workers: u64,
    /// Devices registered when the run finished.
    pub registrations: u64,
    /// Rights Objects issued.
    pub rights_objects: u64,
    /// Wall-clock seconds of the device-driving portion.
    pub elapsed_secs: f64,
    /// Registrations per wall-clock second — the CI regression metric.
    pub registrations_per_sec: f64,
    /// Fleet-wide registration-phase cycles (device cost model).
    pub cycles_registration: u64,
    /// Fleet-wide acquisition-phase cycles.
    pub cycles_acquisition: u64,
    /// Fleet-wide installation-phase cycles.
    pub cycles_installation: u64,
    /// Fleet-wide summed consumption cycles (see `PhaseCycles::sum`).
    pub cycles_consumption: u64,
}

impl FleetBench {
    /// Runs `spec` over the wire-batch fleet driver and summarizes it.
    ///
    /// # Errors
    ///
    /// Stringified `DrmError` from the fleet run.
    pub fn measure(spec: &FleetSpec) -> Result<Self, String> {
        let report = run_fleet_wire(spec).map_err(|e| format!("fleet run failed: {e}"))?;
        let elapsed_secs = report.elapsed.as_secs_f64();
        Ok(FleetBench {
            devices: spec.devices as u64,
            workers: spec.workers as u64,
            registrations: report.registrations,
            rights_objects: report.rights_objects,
            elapsed_secs,
            registrations_per_sec: report.registrations as f64 / elapsed_secs.max(f64::EPSILON),
            cycles_registration: report.cycles.registration,
            cycles_acquisition: report.cycles.acquisition,
            cycles_installation: report.cycles.installation,
            cycles_consumption: report.cycles.consumption_per_access,
        })
    }
}

/// Threads-vs-event-loop serving comparison: one fleet spec, the same
/// device-driving bytes, run against both TCP server cores.
#[derive(Debug, Clone, PartialEq)]
pub struct NetBench {
    /// Devices in the fleet (each one accept/serve/hang-up over loopback).
    pub devices: u64,
    /// Worker threads — the thread pool's concurrency limit; the event
    /// loop ignores it.
    pub workers: u64,
    /// Wall-clock seconds against the thread-pool `RoapTcpServer`.
    pub threads_elapsed_secs: f64,
    /// Registrations per second against the thread pool.
    pub threads_registrations_per_sec: f64,
    /// Wall-clock seconds against the `RoapEventServer` readiness loop.
    pub event_elapsed_secs: f64,
    /// Registrations per second against the event loop.
    pub event_registrations_per_sec: f64,
    /// Event-loop throughput over thread-pool throughput: 1.0 is parity;
    /// the event loop serves this churn workload on a single thread.
    pub event_over_threads: f64,
}

impl NetBench {
    /// Runs `spec` over loopback TCP against both server cores and
    /// verifies the two runs produced byte-identical per-device outcomes
    /// before summarizing their throughput.
    ///
    /// # Errors
    ///
    /// Stringified `DrmError` from either run, or a divergence between
    /// the backends (which would make the comparison meaningless).
    pub fn measure(spec: &FleetSpec) -> Result<Self, String> {
        let threads = run_fleet_tcp_with(spec, TcpBackend::ThreadPool)
            .map_err(|e| format!("thread-pool TCP fleet failed: {e}"))?;
        let event = run_fleet_tcp_with(spec, TcpBackend::EventLoop)
            .map_err(|e| format!("event-loop TCP fleet failed: {e}"))?;
        if !event.matches(&threads) {
            return Err("event-loop fleet diverged from the thread-pool fleet".into());
        }
        let threads_elapsed_secs = threads.elapsed.as_secs_f64();
        let event_elapsed_secs = event.elapsed.as_secs_f64();
        let threads_rps = threads.registrations as f64 / threads_elapsed_secs.max(f64::EPSILON);
        let event_rps = event.registrations as f64 / event_elapsed_secs.max(f64::EPSILON);
        Ok(NetBench {
            devices: spec.devices as u64,
            workers: spec.workers as u64,
            threads_elapsed_secs,
            threads_registrations_per_sec: threads_rps,
            event_elapsed_secs,
            event_registrations_per_sec: event_rps,
            event_over_threads: event_rps / threads_rps.max(f64::EPSILON),
        })
    }

    /// Serializes the group as a nested JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"devices\": {},\n",
                "      \"workers\": {},\n",
                "      \"threads_elapsed_secs\": {:.6},\n",
                "      \"threads_registrations_per_sec\": {:.3},\n",
                "      \"event_elapsed_secs\": {:.6},\n",
                "      \"event_registrations_per_sec\": {:.3},\n",
                "      \"event_over_threads\": {:.4}\n",
                "    }}"
            ),
            self.devices,
            self.workers,
            self.threads_elapsed_secs,
            self.threads_registrations_per_sec,
            self.event_elapsed_secs,
            self.event_registrations_per_sec,
            self.event_over_threads,
        )
    }

    /// Parses the group from its object slice.
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(obj: &str) -> Result<Self, String> {
        Ok(NetBench {
            devices: u64_field(obj, "devices")?,
            workers: u64_field(obj, "workers")?,
            threads_elapsed_secs: f64_field(obj, "threads_elapsed_secs")?,
            threads_registrations_per_sec: f64_field(obj, "threads_registrations_per_sec")?,
            event_elapsed_secs: f64_field(obj, "event_elapsed_secs")?,
            event_registrations_per_sec: f64_field(obj, "event_registrations_per_sec")?,
            event_over_threads: f64_field(obj, "event_over_threads")?,
        })
    }
}

/// Replication, failover and sharded-fleet costs of the cluster layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBench {
    /// Shards the cluster fleet run was spread over.
    pub shards: u64,
    /// WAL records the replication probe shipped to a fresh follower.
    pub replication_records: u64,
    /// Records per second the follower bootstrapped and applied
    /// (in-process pump, ack-on-fsync durability).
    pub replication_records_per_sec: f64,
    /// Wall-clock microseconds to promote the caught-up follower — WAL
    /// recovery from its own log plus the byte-identity cross-check
    /// against the replayed image.
    pub failover_micros: f64,
    /// Wall-clock seconds of the sharded cluster fleet run, one mid-wave
    /// primary kill included.
    pub fleet_elapsed_secs: f64,
    /// Registrations per second across the sharded, failed-over fleet.
    pub fleet_registrations_per_sec: f64,
    /// Primaries killed and failed over during the fleet run.
    pub failovers: u64,
}

impl ClusterBench {
    /// Journals a registration wave into a primary, times a fresh
    /// follower's catch-up and the subsequent promotion, then runs `spec`
    /// over a two-shard cluster with the primary serving the fourth frame
    /// killed mid-wave.
    ///
    /// # Errors
    ///
    /// Stringified cluster/store/fleet failures, or a promoted image that
    /// diverged from the primary's state (which would invalidate every
    /// number this group reports).
    pub fn measure(spec: &FleetSpec) -> Result<Self, String> {
        let store = Arc::new(RiStore::in_memory());
        let mut rng = StdRng::seed_from_u64(spec.base_seed ^ 0xc10c);
        let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
        let service = RiService::new("ri.bench", spec.rsa_modulus_bits, &mut ca, &mut rng);
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store
            .snapshot(&|| service.state_image())
            .map_err(|e| format!("genesis snapshot failed: {e}"))?;
        for i in 0..spec.devices {
            let mut agent = DrmAgent::new(
                &format!("cluster-dev-{i}"),
                spec.rsa_modulus_bits,
                &mut ca,
                &mut rng,
            );
            agent
                .register_with(&service, Timestamp::new(0))
                .map_err(|e| format!("probe registration failed: {e}"))?;
        }

        let primary = Primary::new("bench.a", 1, store);
        let mut follower = Follower::in_memory("bench.b", AckPolicy::OnFsync);
        let started = Instant::now();
        let replication_records =
            replicate(&primary, &mut follower).map_err(|e| format!("replication failed: {e}"))?;
        let replication_secs = started.elapsed().as_secs_f64();

        primary.fence();
        let started = Instant::now();
        let promoted = follower
            .promote(2)
            .map_err(|e| format!("promotion failed: {e}"))?;
        let failover_micros = started.elapsed().as_secs_f64() * 1e6;
        if promoted.image != service.state_image() {
            return Err("promoted follower diverged from the primary's state".into());
        }

        let report = run_fleet_cluster(spec, 2, Some(3))
            .map_err(|e| format!("cluster fleet run failed: {e}"))?;
        let fleet_elapsed_secs = report.fleet.elapsed.as_secs_f64();
        Ok(ClusterBench {
            shards: u64::from(report.shards),
            replication_records,
            replication_records_per_sec: replication_records as f64
                / replication_secs.max(f64::EPSILON),
            failover_micros,
            fleet_elapsed_secs,
            fleet_registrations_per_sec: report.fleet.registrations as f64
                / fleet_elapsed_secs.max(f64::EPSILON),
            failovers: report.failovers,
        })
    }

    /// Serializes the group as a nested JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"shards\": {},\n",
                "      \"replication_records\": {},\n",
                "      \"replication_records_per_sec\": {:.3},\n",
                "      \"failover_micros\": {:.3},\n",
                "      \"fleet_elapsed_secs\": {:.6},\n",
                "      \"fleet_registrations_per_sec\": {:.3},\n",
                "      \"failovers\": {}\n",
                "    }}"
            ),
            self.shards,
            self.replication_records,
            self.replication_records_per_sec,
            self.failover_micros,
            self.fleet_elapsed_secs,
            self.fleet_registrations_per_sec,
            self.failovers,
        )
    }

    /// Parses the group from its object slice.
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(obj: &str) -> Result<Self, String> {
        Ok(ClusterBench {
            shards: u64_field(obj, "shards")?,
            replication_records: u64_field(obj, "replication_records")?,
            replication_records_per_sec: f64_field(obj, "replication_records_per_sec")?,
            failover_micros: f64_field(obj, "failover_micros")?,
            fleet_elapsed_secs: f64_field(obj, "fleet_elapsed_secs")?,
            fleet_registrations_per_sec: f64_field(obj, "fleet_registrations_per_sec")?,
            failovers: u64_field(obj, "failovers")?,
        })
    }
}

/// Session-machine exploration costs: how fast the interleaving explorer
/// covers the reachable state space, plus the fuzz corpus size it gates.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBench {
    /// Concurrent device sessions the probe explored.
    pub sessions: u64,
    /// States the DFS visited within its budget.
    pub states_explored: u64,
    /// Distinct states by digest (the rest were hash-pruned revisits).
    pub distinct_states: u64,
    /// States visited per wall-clock second — the trajectory metric.
    pub states_per_sec: f64,
    /// Malicious-peer attacks in the fuzz corpus, all answered with their
    /// documented status.
    pub fuzz_attacks: u64,
}

impl SessionBench {
    /// Runs a bounded all-faults exploration plus the fuzz corpus and
    /// summarizes the throughput.
    ///
    /// # Errors
    ///
    /// An invariant violation or a wrong fuzz status — either makes the
    /// snapshot meaningless (and the tree broken).
    pub fn measure(max_states: u64) -> Result<Self, String> {
        let config = ExploreConfig {
            sessions: 2,
            seed: 42,
            faults: Faults::all(),
            acquisitions: 1,
            max_depth: 24,
            max_states,
            time_budget: std::time::Duration::from_secs(30),
        };
        let report = explore(&config);
        if !report.violations.is_empty() {
            return Err(format!(
                "explorer found {} invariant violations:\n{}",
                report.violations.len(),
                report
            ));
        }
        let failures = fuzz::run_corpus(config.seed);
        if !failures.is_empty() {
            return Err(format!("fuzz corpus failures: {failures:?}"));
        }
        let (_, attacks) = fuzz::build_corpus(config.seed);
        Ok(SessionBench {
            sessions: config.sessions as u64,
            states_explored: report.states_explored,
            distinct_states: report.distinct_states,
            states_per_sec: report.states_per_sec(),
            fuzz_attacks: attacks.len() as u64,
        })
    }

    /// Serializes the group as a nested JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"sessions\": {},\n",
                "      \"states_explored\": {},\n",
                "      \"distinct_states\": {},\n",
                "      \"states_per_sec\": {:.3},\n",
                "      \"fuzz_attacks\": {}\n",
                "    }}"
            ),
            self.sessions,
            self.states_explored,
            self.distinct_states,
            self.states_per_sec,
            self.fuzz_attacks,
        )
    }

    /// Parses the group from its object slice.
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(obj: &str) -> Result<Self, String> {
        Ok(SessionBench {
            sessions: u64_field(obj, "sessions")?,
            states_explored: u64_field(obj, "states_explored")?,
            distinct_states: u64_field(obj, "distinct_states")?,
            states_per_sec: f64_field(obj, "states_per_sec")?,
            fuzz_attacks: u64_field(obj, "fuzz_attacks")?,
        })
    }
}

/// Per-phase latency distributions over loopback TCP, plus the cost of
/// collecting them: the `oma-obs` histograms the fleet records when
/// observability is on, reduced to the quantiles the paper's cost tables
/// speak in — and the throughput ratio proving that recording them is
/// (near) free.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBench {
    /// Devices in the fleet.
    pub devices: u64,
    /// Worker threads driving them (and sizing the thread-pool core).
    pub workers: u64,
    /// Registration-exchange latency quantiles against the thread-pool
    /// core, in microseconds: p50.
    pub threads_registration_p50_micros: f64,
    /// Thread-pool registration p95.
    pub threads_registration_p95_micros: f64,
    /// Thread-pool registration p99.
    pub threads_registration_p99_micros: f64,
    /// Thread-pool RO-acquisition p50.
    pub threads_acquisition_p50_micros: f64,
    /// Thread-pool RO-acquisition p95.
    pub threads_acquisition_p95_micros: f64,
    /// Thread-pool RO-acquisition p99.
    pub threads_acquisition_p99_micros: f64,
    /// Event-loop registration p50.
    pub event_registration_p50_micros: f64,
    /// Event-loop registration p95.
    pub event_registration_p95_micros: f64,
    /// Event-loop registration p99.
    pub event_registration_p99_micros: f64,
    /// Event-loop RO-acquisition p50.
    pub event_acquisition_p50_micros: f64,
    /// Event-loop RO-acquisition p95.
    pub event_acquisition_p95_micros: f64,
    /// Event-loop RO-acquisition p99.
    pub event_acquisition_p99_micros: f64,
    /// Best-of-N obs-on throughput over best-of-N obs-off throughput on
    /// the thread-pool core. 1.0 means recording every histogram sample
    /// and span costs nothing; the CI gate requires it near 1.0 (see
    /// `MIN_OBS_THROUGHPUT_RATIO`).
    pub obs_overhead_ratio: f64,
}

/// The committed-baseline floor for [`LatencyBench::obs_overhead_ratio`]:
/// an emitted snapshot must show obs-on throughput within 2% of obs-off.
pub const MIN_OBS_THROUGHPUT_RATIO: f64 = 0.98;

/// How many obs-off/obs-on run pairs the overhead probe takes the best of.
/// Loopback fleet runs are scheduler-noisy at smoke sizes; best-of pairs
/// measures the instrumentation cost, not an unlucky context switch. The
/// pairs alternate which side runs first so slow in-process drift
/// (allocator state, thermal throttling late in a long `--emit-bench`)
/// cancels instead of taxing whichever side always ran second.
const OBS_OVERHEAD_TRIALS: usize = 4;

impl LatencyBench {
    /// Runs obs-enabled fleets against both TCP cores for the quantiles,
    /// then alternating obs-off/obs-on thread-pool runs for the overhead
    /// ratio.
    ///
    /// # Errors
    ///
    /// Stringified `DrmError` from any run, or a fleet whose histograms
    /// came back empty (which would mean the obs plumbing is broken).
    pub fn measure(spec: &FleetSpec) -> Result<Self, String> {
        let threads = Self::phase_quantiles(spec, TcpBackend::ThreadPool)?;
        let event = Self::phase_quantiles(spec, TcpBackend::EventLoop)?;

        let mut best_off = 0.0f64;
        let mut best_on = 0.0f64;
        for trial in 0..OBS_OVERHEAD_TRIALS {
            // Alternate the order within each pair (see OBS_OVERHEAD_TRIALS).
            if trial % 2 == 0 {
                best_off = best_off.max(Self::off_throughput(spec)?);
                best_on = best_on.max(Self::on_throughput(spec)?);
            } else {
                best_on = best_on.max(Self::on_throughput(spec)?);
                best_off = best_off.max(Self::off_throughput(spec)?);
            }
        }

        Ok(LatencyBench {
            devices: spec.devices as u64,
            workers: spec.workers as u64,
            threads_registration_p50_micros: threads.0[0],
            threads_registration_p95_micros: threads.0[1],
            threads_registration_p99_micros: threads.0[2],
            threads_acquisition_p50_micros: threads.1[0],
            threads_acquisition_p95_micros: threads.1[1],
            threads_acquisition_p99_micros: threads.1[2],
            event_registration_p50_micros: event.0[0],
            event_registration_p95_micros: event.0[1],
            event_registration_p99_micros: event.0[2],
            event_acquisition_p50_micros: event.1[0],
            event_acquisition_p95_micros: event.1[1],
            event_acquisition_p99_micros: event.1[2],
            obs_overhead_ratio: best_on / best_off.max(f64::EPSILON),
        })
    }

    /// One uninstrumented thread-pool fleet run's throughput.
    fn off_throughput(spec: &FleetSpec) -> Result<f64, String> {
        let report = run_fleet_tcp_with(spec, TcpBackend::ThreadPool)
            .map_err(|e| format!("obs-off fleet failed: {e}"))?;
        Ok(throughput(&report))
    }

    /// One fully instrumented thread-pool fleet run's throughput.
    fn on_throughput(spec: &FleetSpec) -> Result<f64, String> {
        let report = run_fleet_tcp_obs(spec, TcpBackend::ThreadPool, &ObsConfig::On(Obs::new()))
            .map_err(|e| format!("obs-on fleet failed: {e}"))?;
        Ok(throughput(&report))
    }

    /// One obs-enabled fleet run against `backend`; returns
    /// `([registration p50, p95, p99], [acquisition p50, p95, p99])` in
    /// microseconds.
    fn phase_quantiles(
        spec: &FleetSpec,
        backend: TcpBackend,
    ) -> Result<([f64; 3], [f64; 3]), String> {
        let obs = Obs::new();
        run_fleet_tcp_obs(spec, backend, &ObsConfig::On(Arc::clone(&obs)))
            .map_err(|e| format!("latency fleet ({backend:?}) failed: {e}"))?;
        let quantiles = |name: &str| -> Result<[f64; 3], String> {
            let hist = obs
                .registry()
                .find_histogram(name)
                .ok_or_else(|| format!("histogram {name} was never registered"))?;
            let snap = hist.snapshot();
            if snap.count() == 0 {
                return Err(format!("histogram {name} recorded no samples"));
            }
            Ok([0.50, 0.95, 0.99].map(|q| snap.value_at_quantile(q) as f64 / 1e3))
        };
        Ok((
            quantiles("fleet_registration_nanos")?,
            quantiles("fleet_acquisition_nanos")?,
        ))
    }

    /// Serializes the group as a nested JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"devices\": {},\n",
                "      \"workers\": {},\n",
                "      \"threads_registration_p50_micros\": {:.3},\n",
                "      \"threads_registration_p95_micros\": {:.3},\n",
                "      \"threads_registration_p99_micros\": {:.3},\n",
                "      \"threads_acquisition_p50_micros\": {:.3},\n",
                "      \"threads_acquisition_p95_micros\": {:.3},\n",
                "      \"threads_acquisition_p99_micros\": {:.3},\n",
                "      \"event_registration_p50_micros\": {:.3},\n",
                "      \"event_registration_p95_micros\": {:.3},\n",
                "      \"event_registration_p99_micros\": {:.3},\n",
                "      \"event_acquisition_p50_micros\": {:.3},\n",
                "      \"event_acquisition_p95_micros\": {:.3},\n",
                "      \"event_acquisition_p99_micros\": {:.3},\n",
                "      \"obs_overhead_ratio\": {:.4}\n",
                "    }}"
            ),
            self.devices,
            self.workers,
            self.threads_registration_p50_micros,
            self.threads_registration_p95_micros,
            self.threads_registration_p99_micros,
            self.threads_acquisition_p50_micros,
            self.threads_acquisition_p95_micros,
            self.threads_acquisition_p99_micros,
            self.event_registration_p50_micros,
            self.event_registration_p95_micros,
            self.event_registration_p99_micros,
            self.event_acquisition_p50_micros,
            self.event_acquisition_p95_micros,
            self.event_acquisition_p99_micros,
            self.obs_overhead_ratio,
        )
    }

    /// Parses the group from its object slice.
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(obj: &str) -> Result<Self, String> {
        Ok(LatencyBench {
            devices: u64_field(obj, "devices")?,
            workers: u64_field(obj, "workers")?,
            threads_registration_p50_micros: f64_field(obj, "threads_registration_p50_micros")?,
            threads_registration_p95_micros: f64_field(obj, "threads_registration_p95_micros")?,
            threads_registration_p99_micros: f64_field(obj, "threads_registration_p99_micros")?,
            threads_acquisition_p50_micros: f64_field(obj, "threads_acquisition_p50_micros")?,
            threads_acquisition_p95_micros: f64_field(obj, "threads_acquisition_p95_micros")?,
            threads_acquisition_p99_micros: f64_field(obj, "threads_acquisition_p99_micros")?,
            event_registration_p50_micros: f64_field(obj, "event_registration_p50_micros")?,
            event_registration_p95_micros: f64_field(obj, "event_registration_p95_micros")?,
            event_registration_p99_micros: f64_field(obj, "event_registration_p99_micros")?,
            event_acquisition_p50_micros: f64_field(obj, "event_acquisition_p50_micros")?,
            event_acquisition_p95_micros: f64_field(obj, "event_acquisition_p95_micros")?,
            event_acquisition_p99_micros: f64_field(obj, "event_acquisition_p99_micros")?,
            obs_overhead_ratio: f64_field(obj, "obs_overhead_ratio")?,
        })
    }
}

/// Registrations per wall-clock second of a fleet report.
fn throughput(report: &oma_load::FleetReport) -> f64 {
    report.registrations as f64 / report.elapsed.as_secs_f64().max(f64::EPSILON)
}

/// Durability costs: journaling overhead and WAL replay latency.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityBench {
    /// Durable-run elapsed over plain-run elapsed (1.0 = free journaling).
    pub journaling_overhead_ratio: f64,
    /// Journal events replayed when recovering the final state.
    pub wal_events_replayed: u64,
    /// Wall-clock microseconds for snapshot + WAL replay into a state image.
    pub wal_replay_micros: f64,
}

impl DurabilityBench {
    /// Runs `spec` against a journaled in-memory store (no crash) for the
    /// journaling-overhead ratio, then journals a registration wave into a
    /// second store and times recovery from it — the durable fleet driver
    /// snapshots on exit, so its own store replays zero events and cannot
    /// serve as the replay probe. `plain_elapsed_secs` is the un-journaled
    /// reference duration.
    ///
    /// # Errors
    ///
    /// Stringified `DrmError`/`StoreError` from the runs or the recovery.
    pub fn measure(spec: &FleetSpec, plain_elapsed_secs: f64) -> Result<Self, String> {
        let durable = run_fleet_durable_with(spec, Arc::new(RiStore::in_memory()), None)
            .map_err(|e| format!("durable fleet run failed: {e}"))?;

        let store = Arc::new(RiStore::in_memory());
        let mut rng = StdRng::seed_from_u64(spec.base_seed ^ 0xd00d);
        let mut ca = CertificationAuthority::new("cmla", spec.rsa_modulus_bits, &mut rng);
        let service = RiService::new("ri.bench", spec.rsa_modulus_bits, &mut ca, &mut rng);
        service.set_journal(Arc::clone(&store) as Arc<dyn RiJournal>);
        store
            .snapshot(&|| service.state_image())
            .map_err(|e| format!("genesis snapshot failed: {e}"))?;
        for i in 0..spec.devices {
            let mut agent = DrmAgent::new(
                &format!("bench-dev-{i}"),
                spec.rsa_modulus_bits,
                &mut ca,
                &mut rng,
            );
            agent
                .register_with(&service, Timestamp::new(0))
                .map_err(|e| format!("probe registration failed: {e}"))?;
        }
        store
            .flush()
            .map_err(|e| format!("probe flush failed: {e}"))?;
        let started = Instant::now();
        let (image, recovery) = store
            .load_with_report()
            .map_err(|e| format!("recovery failed: {e}"))?;
        let wal_replay_micros = started.elapsed().as_secs_f64() * 1e6;
        drop(image);
        Ok(DurabilityBench {
            journaling_overhead_ratio: durable.fleet.elapsed.as_secs_f64()
                / plain_elapsed_secs.max(f64::EPSILON),
            wal_events_replayed: recovery.events_applied,
            wal_replay_micros,
        })
    }
}

/// One measured section (`smoke` or `full`) of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSection {
    /// RSA primitive latencies.
    pub rsa: RsaLatencies,
    /// Fleet throughput and cycles.
    pub fleet: FleetBench,
    /// Journaling/recovery costs.
    pub durability: DurabilityBench,
    /// Threads-vs-event-loop serving comparison. `None` only when parsed
    /// from a schema-1 document that predates the group.
    pub net: Option<NetBench>,
    /// Replication/failover/sharding costs. `None` only when parsed from
    /// a schema-1 or schema-2 document that predates the group.
    pub cluster: Option<ClusterBench>,
    /// Session-machine exploration throughput. `None` only when parsed
    /// from a schema-1/2/3 document that predates the group.
    pub session: Option<SessionBench>,
    /// Per-phase latency distributions and observability overhead. `None`
    /// only when parsed from a schema-1/2/3/4 document that predates the
    /// group.
    pub latency: Option<LatencyBench>,
}

impl BenchSection {
    /// Measures one section: RSA probe, plain wire fleet, durable fleet,
    /// the TCP serving comparison, the cluster replication/failover probe
    /// and the session-machine exploration probe. The explorer's state
    /// budget scales with the fleet: the smoke spec gets a small sweep,
    /// anything larger the full one.
    ///
    /// # Errors
    ///
    /// Propagates the first failing measurement as a message.
    pub fn capture(spec: &FleetSpec, rsa_iters: u32) -> Result<Self, String> {
        let rsa = RsaLatencies::measure(BENCH_RSA_BITS, rsa_iters);
        let fleet = FleetBench::measure(spec)?;
        let durability = DurabilityBench::measure(spec, fleet.elapsed_secs)?;
        let net = NetBench::measure(spec)?;
        let cluster = ClusterBench::measure(spec)?;
        let explore_states = if spec.devices <= FleetSpec::smoke().devices {
            2_000
        } else {
            10_000
        };
        let session = SessionBench::measure(explore_states)?;
        let latency = LatencyBench::measure(spec)?;
        Ok(BenchSection {
            rsa,
            fleet,
            durability,
            net: Some(net),
            cluster: Some(cluster),
            session: Some(session),
            latency: Some(latency),
        })
    }

    /// Serializes the section as a flat JSON object (plus the nested
    /// `net`, `cluster` and `session` groups).
    pub fn to_json(&self) -> String {
        let net = match &self.net {
            Some(group) => group.to_json(),
            None => "null".to_string(),
        };
        let cluster = match &self.cluster {
            Some(group) => group.to_json(),
            None => "null".to_string(),
        };
        let session = match &self.session {
            Some(group) => group.to_json(),
            None => "null".to_string(),
        };
        let latency = match &self.latency {
            Some(group) => group.to_json(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\n",
                "    \"rsa_modulus_bits\": {},\n",
                "    \"rsa_private_op_micros\": {:.3},\n",
                "    \"rsa_private_baseline_micros\": {:.3},\n",
                "    \"rsa_private_speedup\": {:.3},\n",
                "    \"rsa_public_op_micros\": {:.3},\n",
                "    \"fleet_devices\": {},\n",
                "    \"fleet_workers\": {},\n",
                "    \"fleet_registrations\": {},\n",
                "    \"fleet_rights_objects\": {},\n",
                "    \"fleet_elapsed_secs\": {:.6},\n",
                "    \"fleet_registrations_per_sec\": {:.3},\n",
                "    \"cycles_registration\": {},\n",
                "    \"cycles_acquisition\": {},\n",
                "    \"cycles_installation\": {},\n",
                "    \"cycles_consumption\": {},\n",
                "    \"journaling_overhead_ratio\": {:.4},\n",
                "    \"wal_events_replayed\": {},\n",
                "    \"wal_replay_micros\": {:.3},\n",
                "    \"net\": {},\n",
                "    \"cluster\": {},\n",
                "    \"session\": {},\n",
                "    \"latency\": {}\n",
                "  }}"
            ),
            self.rsa.modulus_bits,
            self.rsa.private_op_micros,
            self.rsa.private_baseline_micros,
            self.rsa.private_speedup,
            self.rsa.public_op_micros,
            self.fleet.devices,
            self.fleet.workers,
            self.fleet.registrations,
            self.fleet.rights_objects,
            self.fleet.elapsed_secs,
            self.fleet.registrations_per_sec,
            self.fleet.cycles_registration,
            self.fleet.cycles_acquisition,
            self.fleet.cycles_installation,
            self.fleet.cycles_consumption,
            self.durability.journaling_overhead_ratio,
            self.durability.wal_events_replayed,
            self.durability.wal_replay_micros,
            net,
            cluster,
            session,
            latency,
        )
    }

    /// Parses a section from the object slice produced by
    /// [`BenchSection::to_json`].
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_json(obj: &str) -> Result<Self, String> {
        Ok(BenchSection {
            rsa: RsaLatencies {
                modulus_bits: u64_field(obj, "rsa_modulus_bits")?,
                private_op_micros: f64_field(obj, "rsa_private_op_micros")?,
                private_baseline_micros: f64_field(obj, "rsa_private_baseline_micros")?,
                private_speedup: f64_field(obj, "rsa_private_speedup")?,
                public_op_micros: f64_field(obj, "rsa_public_op_micros")?,
            },
            fleet: FleetBench {
                devices: u64_field(obj, "fleet_devices")?,
                workers: u64_field(obj, "fleet_workers")?,
                registrations: u64_field(obj, "fleet_registrations")?,
                rights_objects: u64_field(obj, "fleet_rights_objects")?,
                elapsed_secs: f64_field(obj, "fleet_elapsed_secs")?,
                registrations_per_sec: f64_field(obj, "fleet_registrations_per_sec")?,
                cycles_registration: u64_field(obj, "cycles_registration")?,
                cycles_acquisition: u64_field(obj, "cycles_acquisition")?,
                cycles_installation: u64_field(obj, "cycles_installation")?,
                cycles_consumption: u64_field(obj, "cycles_consumption")?,
            },
            durability: DurabilityBench {
                journaling_overhead_ratio: f64_field(obj, "journaling_overhead_ratio")?,
                wal_events_replayed: u64_field(obj, "wal_events_replayed")?,
                wal_replay_micros: f64_field(obj, "wal_replay_micros")?,
            },
            net: match object_slice(obj, "net")? {
                Some(group) => Some(NetBench::from_json(group)?),
                None => None,
            },
            cluster: match object_slice(obj, "cluster")? {
                Some(group) => Some(ClusterBench::from_json(group)?),
                None => None,
            },
            session: match object_slice(obj, "session")? {
                Some(group) => Some(SessionBench::from_json(group)?),
                None => None,
            },
            latency: match object_slice(obj, "latency")? {
                Some(group) => Some(LatencyBench::from_json(group)?),
                None => None,
            },
        })
    }
}

/// A full `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Trajectory label, e.g. `"pr6"` — derived from the file name on emit.
    pub label: String,
    /// The smoke section (always present, what CI compares).
    pub smoke: BenchSection,
    /// The full-size section (absent from CI smoke runs).
    pub full: Option<BenchSection>,
}

impl BenchSnapshot {
    /// Captures a snapshot: the smoke section always, the full section
    /// unless `smoke_only`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing measurement as a message.
    pub fn capture(label: &str, smoke_only: bool) -> Result<Self, String> {
        let smoke = BenchSection::capture(&FleetSpec::smoke(), 16)?;
        let full = if smoke_only {
            None
        } else {
            Some(BenchSection::capture(
                &FleetSpec::new(24, 4).with_acquisitions(2),
                64,
            )?)
        };
        Ok(BenchSnapshot {
            label: label.to_string(),
            smoke,
            full,
        })
    }

    /// Serializes the snapshot as the `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let full = match &self.full {
            Some(section) => section.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": {BENCH_SCHEMA},\n  \"label\": \"{}\",\n  \"smoke\": {},\n  \"full\": {}\n}}\n",
            self.label,
            self.smoke.to_json(),
            full
        )
    }

    /// Parses a `BENCH_*.json` document.
    ///
    /// # Errors
    ///
    /// Reports schema mismatches and the first missing/malformed field.
    pub fn from_json(doc: &str) -> Result<Self, String> {
        let schema = u64_field(doc, "schema")?;
        if schema == 0 || schema > BENCH_SCHEMA {
            return Err(format!(
                "unsupported bench schema {schema} (this build reads up to {BENCH_SCHEMA})"
            ));
        }
        let smoke = object_slice(doc, "smoke")?
            .ok_or_else(|| "missing \"smoke\" section".to_string())
            .and_then(BenchSection::from_json)?;
        let full = match object_slice(doc, "full")? {
            Some(obj) => Some(BenchSection::from_json(obj)?),
            None => None,
        };
        Ok(BenchSnapshot {
            label: string_field(doc, "label")?,
            smoke,
            full,
        })
    }
}

/// Compares a freshly measured snapshot against the committed baseline:
/// fails when smoke fleet throughput dropped by more than
/// [`MAX_THROUGHPUT_DROP`]. Returns the human-readable verdict on success.
///
/// # Errors
///
/// The regression message, suitable for failing a CI step.
/// CI floor for a *freshly measured* [`LatencyBench::obs_overhead_ratio`].
/// Deliberately looser than the committed-baseline floor
/// [`MIN_OBS_THROUGHPUT_RATIO`]: a shared CI runner's best-of-pairs probe
/// still carries scheduler noise a quiet bench box does not, so the gate
/// catches an instrumentation path that became genuinely expensive without
/// flaking on machine weather.
pub const CI_MIN_OBS_THROUGHPUT_RATIO: f64 = 0.85;

pub fn check_regression(baseline: &BenchSnapshot, fresh: &BenchSnapshot) -> Result<String, String> {
    let base = baseline.smoke.fleet.registrations_per_sec;
    let now = fresh.smoke.fleet.registrations_per_sec;
    if base <= 0.0 {
        return Ok(format!(
            "baseline '{}' has no usable throughput figure; skipping comparison",
            baseline.label
        ));
    }
    let change = now / base - 1.0;
    if change < -MAX_THROUGHPUT_DROP {
        return Err(format!(
            "smoke fleet throughput regressed {:.1}% (baseline '{}' {:.1} reg/s, fresh '{}' {:.1} reg/s, limit -{:.0}%)",
            -change * 100.0,
            baseline.label,
            base,
            fresh.label,
            now,
            MAX_THROUGHPUT_DROP * 100.0
        ));
    }
    let mut verdict = format!(
        "smoke fleet throughput {:+.1}% vs baseline '{}' ({:.1} -> {:.1} reg/s)",
        change * 100.0,
        baseline.label,
        base,
        now
    );
    if let Some(latency) = &fresh.smoke.latency {
        if latency.obs_overhead_ratio < CI_MIN_OBS_THROUGHPUT_RATIO {
            return Err(format!(
                "observability overhead too high: obs-on throughput is {:.1}% of obs-off (CI floor {:.0}%)",
                latency.obs_overhead_ratio * 100.0,
                CI_MIN_OBS_THROUGHPUT_RATIO * 100.0
            ));
        }
        verdict.push_str(&format!(
            "; obs-on/obs-off throughput ratio {:.3} (floor {:.2})",
            latency.obs_overhead_ratio, CI_MIN_OBS_THROUGHPUT_RATIO
        ));
    }
    Ok(verdict)
}

// ----- minimal JSON field extraction -----------------------------------------
//
// The documents this module reads are exactly the ones it writes: flat
// sections, string values without escapes or braces. That makes honest
// parsing a matter of locating `"key":` and slicing the value — no general
// JSON parser needed (the tree deliberately has no serde).

fn value_start<'a>(doc: &'a str, key: &str) -> Result<&'a str, String> {
    let needle = format!("\"{key}\":");
    let at = doc
        .find(&needle)
        .ok_or_else(|| format!("missing field \"{key}\""))?;
    Ok(doc[at + needle.len()..].trim_start())
}

fn f64_field(doc: &str, key: &str) -> Result<f64, String> {
    let rest = value_start(doc, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("field \"{key}\": {e}"))
}

fn u64_field(doc: &str, key: &str) -> Result<u64, String> {
    let rest = value_start(doc, key)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|e| format!("field \"{key}\": {e}"))
}

fn string_field(doc: &str, key: &str) -> Result<String, String> {
    let rest = value_start(doc, key)?;
    let inner = rest
        .strip_prefix('"')
        .ok_or_else(|| format!("field \"{key}\" is not a string"))?;
    let end = inner
        .find('"')
        .ok_or_else(|| format!("field \"{key}\" is unterminated"))?;
    Ok(inner[..end].to_string())
}

/// Slices the `{...}` object bound to `key`, or `Ok(None)` when the value is
/// `null` or the key is absent.
fn object_slice<'a>(doc: &'a str, key: &str) -> Result<Option<&'a str>, String> {
    let rest = match value_start(doc, key) {
        Ok(rest) => rest,
        Err(_) => return Ok(None),
    };
    if rest.starts_with("null") {
        return Ok(None);
    }
    if !rest.starts_with('{') {
        return Err(format!("field \"{key}\" is not an object"));
    }
    let mut depth = 0usize;
    for (i, b) in rest.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(Some(&rest[..=i]));
                }
            }
            _ => {}
        }
    }
    Err(format!("field \"{key}\": unbalanced object"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_section(throughput: f64) -> BenchSection {
        BenchSection {
            rsa: RsaLatencies {
                modulus_bits: 512,
                private_op_micros: 100.0,
                private_baseline_micros: 400.0,
                private_speedup: 4.0,
                public_op_micros: 10.0,
            },
            fleet: FleetBench {
                devices: 3,
                workers: 2,
                registrations: 3,
                rights_objects: 3,
                elapsed_secs: 0.5,
                registrations_per_sec: throughput,
                cycles_registration: 1000,
                cycles_acquisition: 2000,
                cycles_installation: 3000,
                cycles_consumption: 4000,
            },
            durability: DurabilityBench {
                journaling_overhead_ratio: 1.05,
                wal_events_replayed: 9,
                wal_replay_micros: 250.0,
            },
            net: Some(NetBench {
                devices: 3,
                workers: 2,
                threads_elapsed_secs: 0.5,
                threads_registrations_per_sec: throughput,
                event_elapsed_secs: 0.5,
                event_registrations_per_sec: throughput,
                event_over_threads: 1.0,
            }),
            cluster: Some(ClusterBench {
                shards: 2,
                replication_records: 12,
                replication_records_per_sec: 24000.0,
                failover_micros: 750.0,
                fleet_elapsed_secs: 0.5,
                fleet_registrations_per_sec: throughput,
                failovers: 1,
            }),
            session: Some(SessionBench {
                sessions: 2,
                states_explored: 2000,
                distinct_states: 900,
                states_per_sec: 15000.0,
                fuzz_attacks: 15,
            }),
            latency: Some(LatencyBench {
                devices: 3,
                workers: 2,
                threads_registration_p50_micros: 900.0,
                threads_registration_p95_micros: 1500.0,
                threads_registration_p99_micros: 2000.0,
                threads_acquisition_p50_micros: 700.0,
                threads_acquisition_p95_micros: 1200.0,
                threads_acquisition_p99_micros: 1600.0,
                event_registration_p50_micros: 950.0,
                event_registration_p95_micros: 1550.0,
                event_registration_p99_micros: 2100.0,
                event_acquisition_p50_micros: 750.0,
                event_acquisition_p95_micros: 1250.0,
                event_acquisition_p99_micros: 1700.0,
                obs_overhead_ratio: 0.995,
            }),
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let snapshot = BenchSnapshot {
            label: "pr6".into(),
            smoke: synthetic_section(6.0),
            full: Some(synthetic_section(48.0)),
        };
        let parsed = BenchSnapshot::from_json(&snapshot.to_json()).unwrap();
        assert_eq!(parsed, snapshot);

        let smoke_only = BenchSnapshot {
            full: None,
            ..snapshot
        };
        let parsed = BenchSnapshot::from_json(&smoke_only.to_json()).unwrap();
        assert_eq!(parsed, smoke_only);
    }

    #[test]
    fn regression_gate_enforces_the_drop_limit() {
        let baseline = BenchSnapshot {
            label: "pr6".into(),
            smoke: synthetic_section(100.0),
            full: None,
        };
        let fine = BenchSnapshot {
            label: "ci".into(),
            smoke: synthetic_section(95.0),
            full: None,
        };
        assert!(check_regression(&baseline, &fine).is_ok());
        let regressed = BenchSnapshot {
            label: "ci".into(),
            smoke: synthetic_section(80.0),
            full: None,
        };
        let err = check_regression(&baseline, &regressed).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = "{\n  \"schema\": 99,\n  \"label\": \"x\"\n}";
        assert!(BenchSnapshot::from_json(doc)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn schema_one_documents_parse_with_the_net_group_absent() {
        // A committed schema-1 snapshot (e.g. BENCH_pr6.json) has no "net"
        // object (and no "cluster" either); the reader must keep accepting
        // it as a CI baseline.
        let mut section = synthetic_section(6.0);
        section.net = None;
        section.cluster = None;
        section.session = None;
        let v1 = BenchSnapshot {
            label: "pr6".into(),
            smoke: section,
            full: None,
        };
        let doc = v1.to_json().replace("\"schema\": 5", "\"schema\": 1");
        let parsed = BenchSnapshot::from_json(&doc).expect("schema-1 doc parses");
        assert_eq!(parsed.smoke.net, None);
        assert_eq!(parsed.smoke.cluster, None);
        assert_eq!(parsed, v1);
    }

    #[test]
    fn schema_two_documents_parse_with_the_cluster_group_absent() {
        // A committed schema-2 snapshot (e.g. BENCH_pr7.json) carries the
        // "net" group but predates "cluster"; it stays readable.
        let mut section = synthetic_section(6.0);
        section.cluster = None;
        section.session = None;
        let v2 = BenchSnapshot {
            label: "pr7".into(),
            smoke: section,
            full: None,
        };
        let doc = v2.to_json().replace("\"schema\": 5", "\"schema\": 2");
        let parsed = BenchSnapshot::from_json(&doc).expect("schema-2 doc parses");
        assert!(parsed.smoke.net.is_some());
        assert_eq!(parsed.smoke.cluster, None);
        assert_eq!(parsed, v2);
    }

    #[test]
    fn schema_three_documents_parse_with_the_session_group_absent() {
        // A committed schema-3 snapshot (e.g. BENCH_pr8.json) carries the
        // "net" and "cluster" groups but predates "session"; it stays
        // readable.
        let mut section = synthetic_section(6.0);
        section.session = None;
        let v3 = BenchSnapshot {
            label: "pr8".into(),
            smoke: section,
            full: None,
        };
        let doc = v3.to_json().replace("\"schema\": 5", "\"schema\": 3");
        let parsed = BenchSnapshot::from_json(&doc).expect("schema-3 doc parses");
        assert!(parsed.smoke.net.is_some());
        assert!(parsed.smoke.cluster.is_some());
        assert_eq!(parsed.smoke.session, None);
        assert_eq!(parsed, v3);
    }

    #[test]
    fn smoke_capture_measures_a_real_speedup() {
        let section = BenchSection::capture(&FleetSpec::smoke(), 4).expect("smoke capture");
        assert!(section.rsa.private_speedup > 1.0, "{:?}", section.rsa);
        assert!(section.fleet.registrations_per_sec > 0.0);
        assert!(section.durability.wal_events_replayed > 0);
        let net = section.net.expect("net group is always measured");
        assert!(net.threads_registrations_per_sec > 0.0);
        assert!(net.event_registrations_per_sec > 0.0);
        assert!(net.event_over_threads > 0.0);
        let cluster = section.cluster.expect("cluster group is always measured");
        assert!(cluster.replication_records > 0);
        assert!(cluster.replication_records_per_sec > 0.0);
        assert!(cluster.failover_micros > 0.0);
        assert!(cluster.fleet_registrations_per_sec > 0.0);
        assert_eq!(cluster.failovers, 1, "the probe kills exactly one primary");
        let session = section.session.expect("session group is always measured");
        assert!(session.states_explored > 0);
        assert!(session.distinct_states > 0);
        assert!(session.states_per_sec > 0.0);
        assert_eq!(session.fuzz_attacks, 15, "the corpus ships 15 attacks");
    }

    #[test]
    fn committed_schema_one_baseline_still_parses() {
        let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json"));
        let baseline = BenchSnapshot::from_json(doc).expect("BENCH_pr6.json parses");
        assert_eq!(baseline.label, "pr6");
        assert_eq!(baseline.smoke.net, None, "schema-1 file has no net group");
        assert!(baseline.full.is_some());
    }

    #[test]
    fn committed_schema_two_baseline_still_parses() {
        let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr7.json"));
        let baseline = BenchSnapshot::from_json(doc).expect("BENCH_pr7.json parses");
        assert_eq!(baseline.label, "pr7");
        assert!(
            baseline.smoke.net.is_some(),
            "schema-2 file has a net group"
        );
        assert_eq!(
            baseline.smoke.cluster, None,
            "schema-2 file predates the cluster group"
        );
        assert!(baseline.full.is_some());
    }

    #[test]
    fn committed_schema_three_baseline_still_parses() {
        let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json"));
        let baseline = BenchSnapshot::from_json(doc).expect("BENCH_pr8.json parses");
        assert_eq!(baseline.label, "pr8");
        assert!(
            baseline.smoke.cluster.is_some(),
            "schema-3 file has a cluster group"
        );
        assert_eq!(
            baseline.smoke.session, None,
            "schema-3 file predates the session group"
        );
    }

    #[test]
    fn committed_schema_four_baseline_still_parses() {
        let doc = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json"));
        let baseline = BenchSnapshot::from_json(doc).expect("BENCH_pr9.json parses");
        assert_eq!(baseline.label, "pr9");
        assert!(
            baseline.smoke.session.is_some(),
            "schema-4 file has a session group"
        );
        assert_eq!(
            baseline.smoke.latency, None,
            "schema-4 file predates the latency group"
        );
    }

    #[test]
    fn committed_baseline_holds_the_obs_overhead_floor() {
        let doc = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_pr10.json"
        ));
        let baseline = BenchSnapshot::from_json(doc).expect("BENCH_pr10.json parses");
        assert_eq!(baseline.label, "pr10");
        let latency = baseline
            .smoke
            .latency
            .as_ref()
            .expect("schema-5 file has a latency group");
        assert!(
            latency.obs_overhead_ratio >= MIN_OBS_THROUGHPUT_RATIO,
            "committed snapshot shows {:.3} obs-on/obs-off throughput, below the \
             {MIN_OBS_THROUGHPUT_RATIO} floor — re-measure on a quiet machine",
            latency.obs_overhead_ratio
        );
        for p in [
            latency.threads_registration_p50_micros,
            latency.threads_registration_p95_micros,
            latency.threads_registration_p99_micros,
            latency.event_registration_p50_micros,
            latency.event_registration_p95_micros,
            latency.event_registration_p99_micros,
            latency.threads_acquisition_p50_micros,
            latency.event_acquisition_p50_micros,
        ] {
            assert!(p > 0.0, "latency quantiles must be measured, not zero");
        }
    }
}
