//! A minimal, self-contained subset of the `criterion` 0.5 benchmarking API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the slice of `criterion` that the benches in `crates/bench` use is
//! vendored here: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The harness is deliberately simple: each benchmark is warmed up once and
//! then timed over a short adaptive batch, reporting mean wall-clock time per
//! iteration (plus throughput when configured). There is no statistical
//! analysis, no HTML report and no baseline comparison — enough to smoke-run
//! `cargo bench` and to keep `cargo bench --no-run` compiling in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Hard cap on timed iterations, so very fast routines terminate quickly.
const MAX_ITERS: u64 = 10_000;

/// Timing driver handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and a calibration sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        let first = start.elapsed();

        // Choose an iteration count that fits the measurement budget.
        let per_iter = first.max(Duration::from_nanos(1));
        let planned = (MEASURE_BUDGET.as_nanos() / per_iter.as_nanos()).max(1) as u64;
        let iters = planned.min(MAX_ITERS);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iterations = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput hint used to report bytes/second alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration (binary units).
    Bytes(u64),
    /// The routine processes this many bytes per iteration (decimal units).
    BytesDecimal(u64),
    /// The routine processes this many elements per iteration.
    Elements(u64),
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// this harness sizes samples by time budget instead).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Configures throughput reporting for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean_ns = bencher.mean_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) | Throughput::BytesDecimal(bytes) => {
            format!(
                " ({:.1} MiB/s)",
                bytes as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0)
            )
        }
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
        }
    });
    println!(
        "bench {label:<60} {:>14.1} ns/iter{} [{} iters]",
        mean_ns,
        rate.unwrap_or_default(),
        bencher.iterations
    );
}

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().to_string(), None, f);
        self
    }
}

/// Prevents the compiler from optimising away a value (re-export of
/// [`std::hint::black_box`] under criterion's name).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main()` running the listed groups (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.iterations >= 1);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(10).throughput(Throughput::Bytes(1024));
        group.bench_function("noop", |b| b.iter(|| ()));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(sample_group, sample_target);

    fn sample_target(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| 2 + 2));
    }

    #[test]
    fn macros_compose() {
        sample_group();
    }
}
