//! A minimal, self-contained subset of the `proptest` 1.x API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the slice of `proptest` used by the property-test suites is vendored
//! here: the [`strategy::Strategy`] trait with [`strategy::Strategy::prop_map`],
//! [`arbitrary::Arbitrary`] / [`prelude::any`], range and
//! [`collection::vec`] strategies, the [`proptest!`] macro and the
//! `prop_assert*` / [`prop_assume!`] macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name) so failures reproduce exactly,
//! and there is **no shrinking** — a failing case reports the case number and
//! the assertion message only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies: value generators composable with `prop_map`.
pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Strategy generating any value of an [`crate::arbitrary::Arbitrary`] type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, runner: &mut TestRunner) -> $t {
                        let span = self.end.checked_sub(self.start).expect("empty range");
                        assert!(span > 0, "empty range strategy");
                        // Modulo bias is irrelevant at test-case scale.
                        self.start + (runner.next_u64() % span as u64) as $t
                    }
                }
            )+
        };
    }

    range_strategy!(u8, u16, u32, u64, usize);
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use crate::test_runner::TestRunner;

    /// A type whose values can be generated uniformly at random.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {
            $(
                impl Arbitrary for $t {
                    fn arbitrary(runner: &mut TestRunner) -> $t {
                        runner.next_u64() as $t
                    }
                }
            )+
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(runner: &mut TestRunner) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(runner))
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = Strategy::generate(&self.len, runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::hash::{Hash, Hasher};

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// A `prop_assume!` precondition failed; the case is skipped.
        Reject,
        /// An assertion failed with the given message.
        Fail(String),
    }

    /// Drives case generation for one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        /// Creates a runner with a seed derived deterministically from the
        /// property name, so every run generates the same cases.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            name.hash(&mut hasher);
            TestRunner {
                config,
                rng: StdRng::seed_from_u64(hasher.finish()),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Draws 64 random bits for strategies.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in strategy) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!("property {} failed at case {}: {}", stringify!($name), case, message)
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, b in 0u8..8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(b < 8);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn prop_map_applies(doubled in (1usize..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn arrays_generate(key in any::<[u8; 16]>(), flag in any::<bool>()) {
            prop_assert_eq!(key.len(), 16);
            let _ = flag;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let draw = || {
            let mut runner = TestRunner::new(ProptestConfig::default(), "seed-test");
            (0usize..100).generate(&mut runner)
        };
        assert_eq!(draw(), draw());
    }
}
