//! A minimal, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the small slice of `rand` the workspace actually uses is vendored here:
//! the [`RngCore`] and [`SeedableRng`] traits, the [`rngs::StdRng`]
//! deterministic generator and [`thread_rng`].
//!
//! `StdRng` is implemented as xoshiro256++ seeded through SplitMix64. It is
//! *not* the ChaCha-based generator of the real `rand` crate — seeded streams
//! differ from upstream — but every use in this workspace only relies on
//! "same seed ⇒ same stream", never on specific stream values.
//!
//! Nothing here is suitable for production key generation; the workspace is a
//! functional model of a 2005-era DRM stack, not a security product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::time::{SystemTime, UNIX_EPOCH};

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does conceptually (exact expansion differs).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from ambient entropy (hasher randomness
    /// plus the system clock). Good enough for tests and simulations; not a
    /// cryptographic entropy source.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    let mut hasher = RandomState::new().build_hasher();
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() ^ u64::from(d.subsec_nanos()))
        .unwrap_or(0);
    hasher.write_u64(now);
    hasher.finish()
}

/// SplitMix64, used to expand small seeds.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Serialises the generator's internal state (the four xoshiro256++
        /// words, little-endian). Together with [`StdRng::from_state_bytes`]
        /// this lets a checkpoint/restore system (e.g. a write-ahead log)
        /// resume a deterministic stream exactly where it stopped.
        pub fn state_bytes(&self) -> [u8; 32] {
            let mut out = [0u8; 32];
            for (chunk, word) in out.chunks_exact_mut(8).zip(self.s.iter()) {
                chunk.copy_from_slice(&word.to_le_bytes());
            }
            out
        }

        /// Rebuilds a generator from a [`StdRng::state_bytes`] checkpoint.
        /// The restored generator continues the original stream: its next
        /// output equals what the checkpointed generator would have produced
        /// next. (xoshiro state is never all-zero, so the round-trip through
        /// `from_seed` is exact.)
        pub fn from_state_bytes(state: [u8; 32]) -> Self {
            Self::from_seed(state)
        }

        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0u64; 4] {
                // xoshiro must not start from the all-zero state.
                let mut sm = SplitMix64 { state: 0 };
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// A lazily seeded generator handle, mirroring `rand::thread_rng()`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            ThreadRng {
                inner: StdRng::from_entropy(),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.inner.fill_bytes(dest)
        }
    }
}

/// Returns a freshly entropy-seeded generator, mirroring `rand::thread_rng()`.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{thread_rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!((a.next_u64(), a.next_u64()), (b.next_u64(), b.next_u64()));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_u32_draws_fresh_output() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = rng.next_u32();
        let b = rng.next_u32();
        // Overwhelmingly likely to differ for a healthy generator.
        assert!(a != b || rng.next_u32() != b);
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for _ in 0..17 {
            rng.next_u64();
        }
        let checkpoint = rng.state_bytes();
        let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut restored = StdRng::from_state_bytes(checkpoint);
        let resumed: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
        assert_eq!(resumed, expected);
    }

    #[test]
    fn thread_rng_produces_output() {
        let mut rng = thread_rng();
        let mut buf = [0u8; 16];
        rng.fill_bytes(&mut buf);
        // 128 zero bits from an entropy-seeded generator is vanishingly
        // unlikely; treat it as a failure of the entropy plumbing.
        assert_ne!(buf, [0u8; 16]);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let direct = StdRng::seed_from_u64(3).next_u64();
        assert_eq!(draw(&mut rng), direct);
        let mut by_ref = StdRng::seed_from_u64(3);
        let r = &mut by_ref;
        assert_eq!(r.next_u64(), direct);
    }
}
