//! First-order energy model.
//!
//! The paper assumes "energy consumption to be directly related to processing
//! performance", i.e. energy ∝ cycles, and reports as future work that early
//! measurements suggest the hardware/software gap is *wider* for energy than
//! for time. [`EnergyModel`] captures both: by default one nanojoule per
//! software cycle and a configurable efficiency factor for hardware macros
//! (1.0 reproduces the paper's first-order assumption; values below 1.0
//! model the wider gap the authors anticipate).

use crate::arch::{Architecture, Implementation};
use crate::cost::CostTable;
use oma_crypto::OpTrace;

/// Energy-per-cycle parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per cycle spent on the processor core, in nanojoules.
    pub software_nj_per_cycle: f64,
    /// Energy per cycle spent inside a hardware macro, in nanojoules.
    pub hardware_nj_per_cycle: f64,
}

impl Default for EnergyModel {
    /// The paper's first-order assumption: energy strictly proportional to
    /// cycles, identical per-cycle cost for both realisations.
    fn default() -> Self {
        EnergyModel {
            software_nj_per_cycle: 1.0,
            hardware_nj_per_cycle: 1.0,
        }
    }
}

impl EnergyModel {
    /// The paper's first-order model (energy ∝ cycles).
    pub fn proportional() -> Self {
        Self::default()
    }

    /// A model where hardware macros additionally consume `factor` times the
    /// per-cycle energy of the core (use `factor < 1` for the wider-gap
    /// hypothesis of the paper's future-work section).
    pub fn with_hardware_factor(factor: f64) -> Self {
        EnergyModel {
            software_nj_per_cycle: 1.0,
            hardware_nj_per_cycle: factor,
        }
    }

    /// Energy in millijoules to execute `trace` on `architecture` under
    /// `table`.
    pub fn millijoules(
        &self,
        trace: &OpTrace,
        architecture: &Architecture,
        table: &CostTable,
    ) -> f64 {
        let nanojoules: f64 = trace
            .iter()
            .map(|(alg, count)| {
                let implementation = architecture.implementation_of(alg);
                let cycles = table.cost(alg, implementation).cycles(count) as f64;
                let per_cycle = match implementation {
                    Implementation::Software => self.software_nj_per_cycle,
                    Implementation::Hardware => self.hardware_nj_per_cycle,
                };
                cycles * per_cycle
            })
            .sum();
        nanojoules / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_crypto::Algorithm;

    fn trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.record(Algorithm::AesDecrypt, 1, 10_000);
        t.record(Algorithm::RsaPrivate, 1, 1);
        t
    }

    #[test]
    fn proportional_model_matches_cycle_ratio() {
        let table = CostTable::paper();
        let model = EnergyModel::proportional();
        let trace = trace();
        for arch in Architecture::standard_variants() {
            let energy = model.millijoules(&trace, &arch, &table);
            let cycles = arch.cycles(&trace, &table) as f64;
            assert!((energy - cycles / 1.0e6).abs() < 1e-9, "{}", arch.name());
        }
    }

    #[test]
    fn hardware_energy_savings_exceed_time_savings_with_efficient_macros() {
        let table = CostTable::paper();
        let trace = trace();
        let sw = Architecture::software();
        let hw = Architecture::full_hardware();
        let time_gap = sw.cycles(&trace, &table) as f64 / hw.cycles(&trace, &table) as f64;

        let efficient = EnergyModel::with_hardware_factor(0.5);
        let energy_gap =
            efficient.millijoules(&trace, &sw, &table) / efficient.millijoules(&trace, &hw, &table);
        assert!(
            energy_gap > time_gap,
            "energy gap {energy_gap} should exceed time gap {time_gap}"
        );
    }

    #[test]
    fn empty_trace_costs_no_energy() {
        let model = EnergyModel::default();
        let e = model.millijoules(
            &OpTrace::new(),
            &Architecture::software(),
            &CostTable::paper(),
        );
        assert_eq!(e, 0.0);
    }

    #[test]
    fn software_only_architecture_ignores_hardware_factor() {
        let table = CostTable::paper();
        let trace = trace();
        let sw = Architecture::software();
        let a = EnergyModel::with_hardware_factor(0.1).millijoules(&trace, &sw, &table);
        let b = EnergyModel::proportional().millijoules(&trace, &sw, &table);
        assert!((a - b).abs() < 1e-12);
    }
}
