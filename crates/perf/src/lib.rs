//! The embedded performance model of OMA DRM 2 — the primary contribution of
//! Thull & Sannino, *"Performance Considerations for an Embedded
//! Implementation of OMA DRM 2"* (DATE 2005).
//!
//! The model answers one question: given the cryptographic work a DRM Agent
//! performs over the content life-cycle, how much processing time (and, to
//! first order, energy) does each hardware/software partitioning of the
//! crypto algorithms cost on a 200 MHz application processor?
//!
//! The pieces:
//!
//! * [`cost`] — the per-algorithm cycle costs of the paper's **Table 1**
//!   (software on an ARM9-class core vs dedicated hardware macros), shared
//!   with the executable crypto backends in `oma-crypto`,
//! * [`arch`] — architecture variants: pure software, AES/SHA-1 hardware
//!   with RSA in software, and full hardware; each variant maps 1:1 onto an
//!   executable [`oma_crypto::backend::CryptoBackend`] via
//!   [`Architecture::backend`](arch::Architecture::backend),
//! * [`phases`] — per-phase operation traces (Registration, Acquisition,
//!   Installation, Consumption),
//! * [`usecase`] — the two end-user use cases of the evaluation
//!   (Music Player: 3.5 MB × 5 playbacks; Ringtone: 30 KB × 25 accesses),
//! * [`analytic`] — closed-form operation counts derived from the protocol
//!   analysis (the spreadsheet model of the paper),
//! * [`runner`] — a *measured* trace source that runs the real protocol from
//!   `oma-drm` on any variant's backend and records both the operations
//!   performed and the cycles the backend charged,
//! * [`energy`] — the energy ∝ cycles first-order estimate,
//! * [`report`] — generators for Table 1 and Figures 5, 6 and 7, from the
//!   analytic model and from measured per-backend runs, plus the
//!   measured-vs-analytic [`consistency_check`](report::consistency_check).
//!
//! # Example: reproduce Figure 6
//!
//! The paper's headline: dedicating hardware macros to all six algorithms
//! cuts the Music Player's total DRM processing time by well over an order
//! of magnitude compared to the pure-software terminal.
//!
//! ```
//! use oma_perf::{arch::Architecture, cost::CostTable, report};
//! use oma_perf::usecase::UseCaseSpec;
//!
//! let figure6 = report::architecture_comparison(
//!     &UseCaseSpec::music_player(),
//!     &CostTable::paper(),
//!     &Architecture::standard_variants(),
//! );
//! let sw = figure6.total_millis("SW").unwrap();
//! let hw = figure6.total_millis("HW").unwrap();
//! assert!(sw / hw > 20.0, "hardware acceleration must win by a wide margin");
//!
//! // The same variants are executable: each maps onto a crypto backend.
//! let table = CostTable::paper();
//! let names: Vec<String> = Architecture::standard_variants()
//!     .iter()
//!     .map(|arch| arch.backend(&table).name().to_string())
//!     .collect();
//! assert_eq!(names, ["SW", "SW/HW", "HW"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod arch;
pub mod cost;
pub mod energy;
pub mod phases;
pub mod report;
pub mod runner;
pub mod usecase;

pub use arch::{Architecture, Implementation};
pub use cost::{AlgorithmCost, CostTable};
pub use phases::{Phase, PhaseTraces};
pub use usecase::UseCaseSpec;
