//! The paper's Table 1: execution cycle counts per cryptographic algorithm
//! for software and hardware realisations.
//!
//! Units follow the paper: symmetric and hash algorithms are charged a fixed
//! per-invocation offset (key scheduling for AES, fixed-length hashing for
//! HMAC) plus a cost per 128 bits of processed data; RSA operations are
//! charged per 1024-bit exponentiation.
//!
//! One correction is applied: the paper prints the software cost of the RSA
//! private-key operation as "3,774,0000" cycles. The value that reproduces
//! the paper's own Figures 6 and 7 is **37 740 000** cycles (a misplaced
//! comma); that value is used here and validated by the figure-reproduction
//! tests in `report.rs`.

use oma_crypto::backend::CostProfile;
use oma_crypto::provider::OpCount;
use oma_crypto::{Algorithm, OpTrace};

pub use oma_crypto::backend::AlgorithmCost;

/// A full cost table: software and hardware cost profiles for every
/// algorithm. The profiles are the same [`CostProfile`] type the pluggable
/// crypto backends charge from, so the analytic model and the executing
/// backends share one source of truth for Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    software: CostProfile,
    hardware: CostProfile,
}

impl CostTable {
    /// The calibrated cycle costs of the paper's Table 1.
    ///
    /// (The paper prints the software RSA private-key cost as "3,774,0000";
    /// the 37.74 Mcycle reading reproduces Figures 6/7 and is used here —
    /// see [`CostProfile::paper_software`].)
    pub fn paper() -> Self {
        CostTable {
            software: CostProfile::paper_software(),
            hardware: CostProfile::paper_hardware(),
        }
    }

    /// Builds a custom table (for ablations / sensitivity studies).
    pub fn custom(
        software: impl Fn(Algorithm) -> AlgorithmCost,
        hardware: impl Fn(Algorithm) -> AlgorithmCost,
    ) -> Self {
        CostTable {
            software: CostProfile::new(software),
            hardware: CostProfile::new(hardware),
        }
    }

    /// Software cost of `algorithm`.
    pub fn software(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.software.cost(algorithm)
    }

    /// Hardware cost of `algorithm`.
    pub fn hardware(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.hardware.cost(algorithm)
    }

    /// The full software cost column (for constructing backends).
    pub fn software_profile(&self) -> &CostProfile {
        &self.software
    }

    /// The full hardware cost column (for constructing backends).
    pub fn hardware_profile(&self) -> &CostProfile {
        &self.hardware
    }

    /// Cost of `algorithm` in the given realisation.
    pub fn cost(
        &self,
        algorithm: Algorithm,
        implementation: crate::arch::Implementation,
    ) -> AlgorithmCost {
        match implementation {
            crate::arch::Implementation::Software => self.software(algorithm),
            crate::arch::Implementation::Hardware => self.hardware(algorithm),
        }
    }

    /// Cycles a trace costs when every algorithm runs in software.
    pub fn software_cycles(&self, trace: &OpTrace) -> u64 {
        trace
            .iter()
            .map(|(alg, count)| self.software(alg).cycles(count))
            .sum()
    }

    /// Speed-up factor hardware offers over software for one algorithm,
    /// processing `blocks` blocks in a single invocation.
    pub fn speedup(&self, algorithm: Algorithm, blocks: u64) -> f64 {
        let count = OpCount {
            invocations: 1,
            blocks,
        };
        let sw = self.software(algorithm).cycles(count) as f64;
        let hw = self.hardware(algorithm).cycles(count).max(1) as f64;
        sw / hw
    }
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let t = CostTable::paper();
        assert_eq!(
            t.software(Algorithm::AesEncrypt),
            AlgorithmCost::new(360, 830)
        );
        assert_eq!(
            t.software(Algorithm::AesDecrypt),
            AlgorithmCost::new(950, 830)
        );
        assert_eq!(t.software(Algorithm::Sha1), AlgorithmCost::new(0, 400));
        assert_eq!(
            t.software(Algorithm::HmacSha1),
            AlgorithmCost::new(1_200, 400)
        );
        assert_eq!(t.software(Algorithm::RsaPublic).per_block_cycles, 2_160_000);
        assert_eq!(
            t.software(Algorithm::RsaPrivate).per_block_cycles,
            37_740_000
        );
        assert_eq!(t.hardware(Algorithm::AesEncrypt), AlgorithmCost::new(0, 10));
        assert_eq!(
            t.hardware(Algorithm::AesDecrypt),
            AlgorithmCost::new(10, 10)
        );
        assert_eq!(t.hardware(Algorithm::Sha1), AlgorithmCost::new(0, 20));
        assert_eq!(t.hardware(Algorithm::HmacSha1), AlgorithmCost::new(240, 20));
        assert_eq!(t.hardware(Algorithm::RsaPublic).per_block_cycles, 10_000);
        assert_eq!(t.hardware(Algorithm::RsaPrivate).per_block_cycles, 260_000);
        assert_eq!(CostTable::default(), t);
    }

    #[test]
    fn cycle_arithmetic() {
        let cost = AlgorithmCost::new(100, 10);
        assert_eq!(
            cost.cycles(OpCount {
                invocations: 2,
                blocks: 30
            }),
            2 * 100 + 30 * 10
        );
        assert_eq!(cost.cycles(OpCount::default()), 0);
    }

    #[test]
    fn software_trace_costing() {
        let t = CostTable::paper();
        let mut trace = OpTrace::new();
        trace.record(Algorithm::RsaPrivate, 1, 1);
        trace.record(Algorithm::Sha1, 1, 100);
        assert_eq!(t.software_cycles(&trace), 37_740_000 + 40_000);
    }

    #[test]
    fn hardware_speedups_are_large_for_bulk_data() {
        let t = CostTable::paper();
        // Per-block speedups from Table 1: AES 83x, SHA-1 20x, RSA private ~145x.
        assert!(t.speedup(Algorithm::AesDecrypt, 10_000) > 80.0);
        assert!(t.speedup(Algorithm::Sha1, 10_000) >= 19.9);
        assert!(t.speedup(Algorithm::RsaPrivate, 1) > 100.0);
    }

    #[test]
    fn custom_table() {
        let t = CostTable::custom(|_| AlgorithmCost::new(1, 2), |_| AlgorithmCost::new(0, 1));
        assert_eq!(t.software(Algorithm::Sha1), AlgorithmCost::new(1, 2));
        assert_eq!(t.hardware(Algorithm::RsaPrivate), AlgorithmCost::new(0, 1));
    }
}
