//! The paper's Table 1: execution cycle counts per cryptographic algorithm
//! for software and hardware realisations.
//!
//! Units follow the paper: symmetric and hash algorithms are charged a fixed
//! per-invocation offset (key scheduling for AES, fixed-length hashing for
//! HMAC) plus a cost per 128 bits of processed data; RSA operations are
//! charged per 1024-bit exponentiation.
//!
//! One correction is applied: the paper prints the software cost of the RSA
//! private-key operation as "3,774,0000" cycles. The value that reproduces
//! the paper's own Figures 6 and 7 is **37 740 000** cycles (a misplaced
//! comma); that value is used here and validated by the figure-reproduction
//! tests in `report.rs`.

use oma_crypto::provider::OpCount;
use oma_crypto::{Algorithm, OpTrace};

/// Cycle cost of one algorithm in one realisation (software or hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AlgorithmCost {
    /// Fixed cycles per invocation (key schedule, fixed-length hashing).
    pub offset_cycles: u64,
    /// Cycles per processed block (128-bit data block, or one RSA
    /// exponentiation).
    pub per_block_cycles: u64,
}

impl AlgorithmCost {
    /// Creates a cost entry.
    pub const fn new(offset_cycles: u64, per_block_cycles: u64) -> Self {
        AlgorithmCost { offset_cycles, per_block_cycles }
    }

    /// Cycles consumed by `count` operations under this cost.
    pub fn cycles(&self, count: OpCount) -> u64 {
        self.offset_cycles * count.invocations + self.per_block_cycles * count.blocks
    }
}

/// A full cost table: software and hardware costs for every algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    software: [AlgorithmCost; 6],
    hardware: [AlgorithmCost; 6],
}

fn index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::AesEncrypt => 0,
        Algorithm::AesDecrypt => 1,
        Algorithm::Sha1 => 2,
        Algorithm::HmacSha1 => 3,
        Algorithm::RsaPublic => 4,
        Algorithm::RsaPrivate => 5,
    }
}

impl CostTable {
    /// The calibrated cycle costs of the paper's Table 1.
    pub fn paper() -> Self {
        let mut software = [AlgorithmCost::default(); 6];
        let mut hardware = [AlgorithmCost::default(); 6];

        software[index(Algorithm::AesEncrypt)] = AlgorithmCost::new(360, 830);
        software[index(Algorithm::AesDecrypt)] = AlgorithmCost::new(950, 830);
        software[index(Algorithm::Sha1)] = AlgorithmCost::new(0, 400);
        software[index(Algorithm::HmacSha1)] = AlgorithmCost::new(1_200, 400);
        software[index(Algorithm::RsaPublic)] = AlgorithmCost::new(0, 2_160_000);
        // Paper prints "3,774,0000"; 37.74 Mcycles reproduces Figures 6/7.
        software[index(Algorithm::RsaPrivate)] = AlgorithmCost::new(0, 37_740_000);

        hardware[index(Algorithm::AesEncrypt)] = AlgorithmCost::new(0, 10);
        hardware[index(Algorithm::AesDecrypt)] = AlgorithmCost::new(10, 10);
        hardware[index(Algorithm::Sha1)] = AlgorithmCost::new(0, 20);
        hardware[index(Algorithm::HmacSha1)] = AlgorithmCost::new(240, 20);
        hardware[index(Algorithm::RsaPublic)] = AlgorithmCost::new(0, 10_000);
        hardware[index(Algorithm::RsaPrivate)] = AlgorithmCost::new(0, 260_000);

        CostTable { software, hardware }
    }

    /// Builds a custom table (for ablations / sensitivity studies).
    pub fn custom(
        software: impl Fn(Algorithm) -> AlgorithmCost,
        hardware: impl Fn(Algorithm) -> AlgorithmCost,
    ) -> Self {
        let mut sw = [AlgorithmCost::default(); 6];
        let mut hw = [AlgorithmCost::default(); 6];
        for alg in Algorithm::ALL {
            sw[index(alg)] = software(alg);
            hw[index(alg)] = hardware(alg);
        }
        CostTable { software: sw, hardware: hw }
    }

    /// Software cost of `algorithm`.
    pub fn software(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.software[index(algorithm)]
    }

    /// Hardware cost of `algorithm`.
    pub fn hardware(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.hardware[index(algorithm)]
    }

    /// Cost of `algorithm` in the given realisation.
    pub fn cost(&self, algorithm: Algorithm, implementation: crate::arch::Implementation) -> AlgorithmCost {
        match implementation {
            crate::arch::Implementation::Software => self.software(algorithm),
            crate::arch::Implementation::Hardware => self.hardware(algorithm),
        }
    }

    /// Cycles a trace costs when every algorithm runs in software.
    pub fn software_cycles(&self, trace: &OpTrace) -> u64 {
        trace
            .iter()
            .map(|(alg, count)| self.software(alg).cycles(count))
            .sum()
    }

    /// Speed-up factor hardware offers over software for one algorithm,
    /// processing `blocks` blocks in a single invocation.
    pub fn speedup(&self, algorithm: Algorithm, blocks: u64) -> f64 {
        let count = OpCount { invocations: 1, blocks };
        let sw = self.software(algorithm).cycles(count) as f64;
        let hw = self.hardware(algorithm).cycles(count).max(1) as f64;
        sw / hw
    }
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let t = CostTable::paper();
        assert_eq!(t.software(Algorithm::AesEncrypt), AlgorithmCost::new(360, 830));
        assert_eq!(t.software(Algorithm::AesDecrypt), AlgorithmCost::new(950, 830));
        assert_eq!(t.software(Algorithm::Sha1), AlgorithmCost::new(0, 400));
        assert_eq!(t.software(Algorithm::HmacSha1), AlgorithmCost::new(1_200, 400));
        assert_eq!(t.software(Algorithm::RsaPublic).per_block_cycles, 2_160_000);
        assert_eq!(t.software(Algorithm::RsaPrivate).per_block_cycles, 37_740_000);
        assert_eq!(t.hardware(Algorithm::AesEncrypt), AlgorithmCost::new(0, 10));
        assert_eq!(t.hardware(Algorithm::AesDecrypt), AlgorithmCost::new(10, 10));
        assert_eq!(t.hardware(Algorithm::Sha1), AlgorithmCost::new(0, 20));
        assert_eq!(t.hardware(Algorithm::HmacSha1), AlgorithmCost::new(240, 20));
        assert_eq!(t.hardware(Algorithm::RsaPublic).per_block_cycles, 10_000);
        assert_eq!(t.hardware(Algorithm::RsaPrivate).per_block_cycles, 260_000);
        assert_eq!(CostTable::default(), t);
    }

    #[test]
    fn cycle_arithmetic() {
        let cost = AlgorithmCost::new(100, 10);
        assert_eq!(cost.cycles(OpCount { invocations: 2, blocks: 30 }), 2 * 100 + 30 * 10);
        assert_eq!(cost.cycles(OpCount::default()), 0);
    }

    #[test]
    fn software_trace_costing() {
        let t = CostTable::paper();
        let mut trace = OpTrace::new();
        trace.record(Algorithm::RsaPrivate, 1, 1);
        trace.record(Algorithm::Sha1, 1, 100);
        assert_eq!(t.software_cycles(&trace), 37_740_000 + 40_000);
    }

    #[test]
    fn hardware_speedups_are_large_for_bulk_data() {
        let t = CostTable::paper();
        // Per-block speedups from Table 1: AES 83x, SHA-1 20x, RSA private ~145x.
        assert!(t.speedup(Algorithm::AesDecrypt, 10_000) > 80.0);
        assert!(t.speedup(Algorithm::Sha1, 10_000) >= 19.9);
        assert!(t.speedup(Algorithm::RsaPrivate, 1) > 100.0);
    }

    #[test]
    fn custom_table() {
        let t = CostTable::custom(
            |_| AlgorithmCost::new(1, 2),
            |_| AlgorithmCost::new(0, 1),
        );
        assert_eq!(t.software(Algorithm::Sha1), AlgorithmCost::new(1, 2));
        assert_eq!(t.hardware(Algorithm::RsaPrivate), AlgorithmCost::new(0, 1));
    }
}
