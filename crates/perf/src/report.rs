//! Report generators for the paper's tables and figures.
//!
//! * [`table1`] — the algorithm cost table (Table 1),
//! * [`algorithm_breakdown`] / [`figure5`] — relative share of processing
//!   time per algorithm in the pure-software variant (Figure 5),
//! * [`architecture_comparison`] — total processing time of the SW, SW/HW
//!   and HW variants for one use case (Figure 6 for the Music Player,
//!   Figure 7 for the Ringtone), computed from the **analytic** operation
//!   model,
//! * [`measured_architecture_comparison`] — the same comparison computed
//!   from **measured** protocol runs: the DRM Agent executes on each
//!   variant's crypto backend and the backend's own cycle bill is reported,
//! * [`consistency_check`] — the measured-vs-analytic cross-check
//!   (the paper's approximation holds when the two agree),
//! * [`energy_comparison`] — the energy ∝ cycles estimate of §3.
//!
//! Every report implements [`std::fmt::Display`] so the `repro` binary in
//! `oma-bench` can print the same rows/series the paper reports.

use crate::analytic;
use crate::arch::Architecture;
use crate::cost::CostTable;
use crate::energy::EnergyModel;
use crate::runner;
use crate::usecase::UseCaseSpec;
use oma_crypto::Algorithm;
use oma_drm::DrmError;
use std::fmt;

/// A formatted view of the cost table (the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Report {
    rows: Vec<Table1Row>,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Algorithm the row describes.
    pub algorithm: Algorithm,
    /// Software cost rendered like the paper ("offset + per-block/128 bit").
    pub software: String,
    /// Hardware cost rendered like the paper.
    pub hardware: String,
}

fn render_cost(cost: crate::cost::AlgorithmCost, unit: &str) -> String {
    if cost.offset_cycles == 0 {
        format!("{}/{unit}", cost.per_block_cycles)
    } else {
        format!("{} + {}/{unit}", cost.offset_cycles, cost.per_block_cycles)
    }
}

/// Builds the Table 1 report from a cost table.
pub fn table1(table: &CostTable) -> Table1Report {
    let rows = Algorithm::ALL
        .into_iter()
        .map(|algorithm| {
            let unit = match algorithm {
                Algorithm::RsaPublic | Algorithm::RsaPrivate => "1024 bit",
                _ => "128 bit",
            };
            Table1Row {
                algorithm,
                software: render_cost(table.software(algorithm), unit),
                hardware: render_cost(table.hardware(algorithm), unit),
            }
        })
        .collect();
    Table1Report { rows }
}

impl Table1Report {
    /// The rows in Table 1 order.
    pub fn rows(&self) -> &[Table1Row] {
        &self.rows
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<26} {:>28} {:>22}",
            "Algorithm", "Software [cycles]", "Hardware [cycles]"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} {:>28} {:>22}",
                row.algorithm.label(),
                row.software,
                row.hardware
            )?;
        }
        Ok(())
    }
}

/// The algorithm categories shown in Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakdownCategory {
    /// RSA public-key operations.
    PkiPublicKeyOp,
    /// RSA private-key operations.
    PkiPrivateKeyOp,
    /// AES decryption (content and key unwrapping).
    AesDecryption,
    /// SHA-1 hashing.
    Sha1,
    /// Everything else (AES encryption for re-wrapping, HMAC).
    Other,
}

impl BreakdownCategory {
    /// All categories, legend order of Figure 5.
    pub const ALL: [BreakdownCategory; 5] = [
        BreakdownCategory::PkiPublicKeyOp,
        BreakdownCategory::PkiPrivateKeyOp,
        BreakdownCategory::AesDecryption,
        BreakdownCategory::Sha1,
        BreakdownCategory::Other,
    ];

    /// Figure legend label.
    pub fn label(&self) -> &'static str {
        match self {
            BreakdownCategory::PkiPublicKeyOp => "PKI Public Key Operation",
            BreakdownCategory::PkiPrivateKeyOp => "PKI Private Key Operation",
            BreakdownCategory::AesDecryption => "AES Decryption",
            BreakdownCategory::Sha1 => "SHA-1",
            BreakdownCategory::Other => "Other",
        }
    }

    fn of(algorithm: Algorithm) -> Self {
        match algorithm {
            Algorithm::RsaPublic => BreakdownCategory::PkiPublicKeyOp,
            Algorithm::RsaPrivate => BreakdownCategory::PkiPrivateKeyOp,
            Algorithm::AesDecrypt => BreakdownCategory::AesDecryption,
            Algorithm::Sha1 => BreakdownCategory::Sha1,
            Algorithm::AesEncrypt | Algorithm::HmacSha1 => BreakdownCategory::Other,
        }
    }
}

impl fmt::Display for BreakdownCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The per-algorithm share of total software processing time for one use
/// case (one bar of Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmBreakdown {
    /// Use case name.
    pub use_case: String,
    /// Total cycles in the pure-software variant.
    pub total_cycles: u64,
    /// Percentage share per category (sums to 100).
    pub shares: Vec<(BreakdownCategory, f64)>,
}

impl AlgorithmBreakdown {
    /// The share of one category in percent.
    pub fn share(&self, category: BreakdownCategory) -> f64 {
        self.shares
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }
}

impl fmt::Display for AlgorithmBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (software variant, {} cycles total)",
            self.use_case, self.total_cycles
        )?;
        for (category, share) in &self.shares {
            writeln!(f, "  {:<28} {:>6.1} %", category.label(), share)?;
        }
        Ok(())
    }
}

/// Computes the Figure 5 breakdown for one use case using the analytic
/// operation model and the pure-software architecture.
pub fn algorithm_breakdown(spec: &UseCaseSpec, table: &CostTable) -> AlgorithmBreakdown {
    let traces = analytic::phase_traces(spec);
    let total_trace = traces.total(spec.accesses());
    let software = Architecture::software();
    let per_algorithm = software.cycles_per_algorithm(&total_trace, table);
    let total: u64 = per_algorithm.iter().map(|(_, c)| *c).sum();

    let mut shares = Vec::with_capacity(BreakdownCategory::ALL.len());
    for category in BreakdownCategory::ALL {
        let cycles: u64 = per_algorithm
            .iter()
            .filter(|(alg, _)| BreakdownCategory::of(*alg) == category)
            .map(|(_, c)| *c)
            .sum();
        shares.push((category, cycles as f64 / total as f64 * 100.0));
    }
    AlgorithmBreakdown {
        use_case: spec.name().to_string(),
        total_cycles: total,
        shares,
    }
}

/// The full Figure 5: one breakdown per use case.
pub fn figure5(table: &CostTable) -> Vec<AlgorithmBreakdown> {
    UseCaseSpec::paper_use_cases()
        .iter()
        .map(|spec| algorithm_breakdown(spec, table))
        .collect()
}

/// Total processing time of each architecture variant for one use case
/// (Figure 6 / Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchitectureComparison {
    /// Use case name.
    pub use_case: String,
    /// Per-variant results `(name, cycles, milliseconds)`.
    pub entries: Vec<(String, u64, f64)>,
}

impl ArchitectureComparison {
    /// Total milliseconds for the named variant.
    pub fn total_millis(&self, variant: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(name, _, _)| name == variant)
            .map(|(_, _, ms)| *ms)
    }

    /// Total cycles for the named variant.
    pub fn total_cycles(&self, variant: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(name, _, _)| name == variant)
            .map(|(_, cycles, _)| *cycles)
    }

    /// Speed-up of `fast` over `slow` (wall-clock ratio).
    pub fn speedup(&self, slow: &str, fast: &str) -> Option<f64> {
        Some(self.total_millis(slow)? / self.total_millis(fast)?)
    }
}

impl fmt::Display for ArchitectureComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} use case", self.use_case)?;
        writeln!(f, "{:<8} {:>16} {:>12}", "Variant", "Cycles", "Time [ms]")?;
        for (name, cycles, ms) in &self.entries {
            writeln!(f, "{:<8} {:>16} {:>12.1}", name, cycles, ms)?;
        }
        Ok(())
    }
}

/// Evaluates one use case on a set of architecture variants using the
/// analytic operation model (Figures 6 and 7 of the paper).
pub fn architecture_comparison(
    spec: &UseCaseSpec,
    table: &CostTable,
    variants: &[Architecture],
) -> ArchitectureComparison {
    let traces = analytic::phase_traces(spec);
    let total_trace = traces.total(spec.accesses());
    let entries = variants
        .iter()
        .map(|arch| {
            let cycles = arch.cycles(&total_trace, table);
            (
                arch.name().to_string(),
                cycles,
                arch.millis(&total_trace, table),
            )
        })
        .collect();
    ArchitectureComparison {
        use_case: spec.name().to_string(),
        entries,
    }
}

/// Evaluates one use case on a set of architecture variants by *executing*
/// the protocol on each variant's crypto backend (Figures 6 and 7 from
/// measured runs instead of the analytic model).
///
/// The reported cycles are the ones the backend charged while performing the
/// run's cryptography (consumption measured once and scaled by the spec's
/// access count, like the paper's per-access accounting).
///
/// # Errors
///
/// Propagates any [`DrmError`] from the underlying protocol runs.
pub fn measured_architecture_comparison(
    spec: &UseCaseSpec,
    table: &CostTable,
    variants: &[Architecture],
    seed: u64,
) -> Result<ArchitectureComparison, DrmError> {
    let entries = variants
        .iter()
        .map(|arch| {
            let run = runner::measure_use_case_on(spec, arch, table, seed)?;
            let cycles = run.cycles.total(spec.accesses());
            let millis = cycles as f64 / arch.clock_hz() as f64 * 1_000.0;
            Ok((arch.name().to_string(), cycles, millis))
        })
        .collect::<Result<Vec<_>, DrmError>>()?;
    Ok(ArchitectureComparison {
        use_case: spec.name().to_string(),
        entries,
    })
}

/// The measured-vs-analytic cross-check for one use case: per variant, the
/// two totals and their relative deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConsistency {
    /// Use case name.
    pub use_case: String,
    /// Per-variant rows `(name, measured ms, analytic ms, relative error)`.
    pub entries: Vec<(String, f64, f64, f64)>,
}

impl ModelConsistency {
    /// The largest relative deviation across variants.
    pub fn max_relative_error(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, _, _, e)| e.abs())
            .fold(0.0, f64::max)
    }

    /// Whether every variant agrees within `tolerance` (relative).
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.max_relative_error() <= tolerance
    }
}

impl fmt::Display for ModelConsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} use case: measured run vs analytic model",
            self.use_case
        )?;
        writeln!(
            f,
            "{:<8} {:>14} {:>14} {:>10}",
            "Variant", "Measured [ms]", "Analytic [ms]", "Delta"
        )?;
        for (name, measured, analytic, error) in &self.entries {
            writeln!(
                f,
                "{:<8} {:>14.1} {:>14.1} {:>9.1}%",
                name,
                measured,
                analytic,
                error * 100.0
            )?;
        }
        Ok(())
    }
}

/// Compares a measured comparison against the analytic one variant by
/// variant. Variants missing from either side are skipped.
pub fn consistency_check(
    measured: &ArchitectureComparison,
    analytic: &ArchitectureComparison,
) -> ModelConsistency {
    let entries = measured
        .entries
        .iter()
        .filter_map(|(name, _, measured_ms)| {
            let analytic_ms = analytic.total_millis(name)?;
            let error = (measured_ms - analytic_ms) / analytic_ms;
            Some((name.clone(), *measured_ms, analytic_ms, error))
        })
        .collect();
    ModelConsistency {
        use_case: measured.use_case.clone(),
        entries,
    }
}

/// Per-variant energy estimate for one use case (the §3 energy discussion).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyComparison {
    /// Use case name.
    pub use_case: String,
    /// Per-variant energy in millijoules.
    pub entries: Vec<(String, f64)>,
}

impl EnergyComparison {
    /// Millijoules for the named variant.
    pub fn millijoules(&self, variant: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(name, _)| name == variant)
            .map(|(_, mj)| *mj)
    }
}

impl fmt::Display for EnergyComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} use case (energy estimate)", self.use_case)?;
        writeln!(f, "{:<8} {:>14}", "Variant", "Energy [mJ]")?;
        for (name, mj) in &self.entries {
            writeln!(f, "{:<8} {:>14.3}", name, mj)?;
        }
        Ok(())
    }
}

/// Evaluates the energy model for one use case across architecture variants.
pub fn energy_comparison(
    spec: &UseCaseSpec,
    table: &CostTable,
    variants: &[Architecture],
    model: &EnergyModel,
) -> EnergyComparison {
    let traces = analytic::phase_traces(spec);
    let total_trace = traces.total(spec.accesses());
    let entries = variants
        .iter()
        .map(|arch| {
            (
                arch.name().to_string(),
                model.millijoules(&total_trace, arch, table),
            )
        })
        .collect();
    EnergyComparison {
        use_case: spec.name().to_string(),
        entries,
    }
}

/// Throughput and per-phase cycle totals of one device-fleet load run
/// against a shared `RiService` (produced by the `oma-load` harness and
/// printed next to the Fig 6/7 tables by the repro binary).
///
/// The type carries plain numbers so `oma-perf` stays independent of the
/// load harness; `oma-load` fills it in from a [`crate::runner::PhaseCycles`]
/// aggregate and wall-clock timings.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Scenario name (e.g. "Ringtone fleet").
    pub name: String,
    /// Worker threads that drove the fleet.
    pub workers: usize,
    /// Devices simulated.
    pub devices: usize,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Successful registrations.
    pub registrations: u64,
    /// Rights Objects issued.
    pub rights_objects: u64,
    /// Fleet-wide per-phase cycle totals charged by the terminals' backends.
    /// This is a [`runner::PhaseCycles::merge`]d aggregate: the consumption
    /// field holds the sum over all accesses, so price it with
    /// [`runner::PhaseCycles::sum`], never `total(accesses)`.
    pub phase_cycles: runner::PhaseCycles,
}

impl FleetSummary {
    /// Registrations completed per wall-clock second.
    pub fn registrations_per_sec(&self) -> f64 {
        self.registrations as f64 / self.elapsed_secs.max(f64::EPSILON)
    }

    /// Rights Objects issued per wall-clock second.
    pub fn ros_per_sec(&self) -> f64 {
        self.rights_objects as f64 / self.elapsed_secs.max(f64::EPSILON)
    }
}

impl fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — {} devices on {} workers in {:.3} s",
            self.name, self.devices, self.workers, self.elapsed_secs
        )?;
        writeln!(
            f,
            "  throughput: {:>10.1} registrations/s {:>10.1} ROs/s",
            self.registrations_per_sec(),
            self.ros_per_sec()
        )?;
        writeln!(f, "  {:<14} {:>16}", "Phase", "Cycles")?;
        for phase in crate::phases::Phase::ALL {
            writeln!(
                f,
                "  {:<14} {:>16}",
                phase.name(),
                self.phase_cycles.phase(phase)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper values for Figures 6 and 7 (milliseconds).
    const FIGURE6_PAPER: [(&str, f64); 3] = [("SW", 7_730.0), ("SW/HW", 800.0), ("HW", 190.0)];
    const FIGURE7_PAPER: [(&str, f64); 3] = [("SW", 900.0), ("SW/HW", 620.0), ("HW", 12.0)];

    fn within(actual: f64, expected: f64, tolerance: f64) -> bool {
        (actual - expected).abs() / expected <= tolerance
    }

    #[test]
    fn table1_report_lists_all_algorithms() {
        let report = table1(&CostTable::paper());
        assert_eq!(report.rows().len(), 6);
        let text = report.to_string();
        assert!(text.contains("AES Decryption"));
        assert!(text.contains("37740000/1024 bit"));
        assert!(text.contains("950 + 830/128 bit"));
        assert!(text.contains("Hardware"));
    }

    #[test]
    fn figure6_music_player_matches_paper_within_15_percent() {
        let comparison = architecture_comparison(
            &UseCaseSpec::music_player(),
            &CostTable::paper(),
            &Architecture::standard_variants(),
        );
        for (variant, expected) in FIGURE6_PAPER {
            let actual = comparison.total_millis(variant).unwrap();
            assert!(
                within(actual, expected, 0.15),
                "Music Player {variant}: model {actual:.0} ms vs paper {expected} ms"
            );
        }
        assert!(comparison.to_string().contains("Music Player"));
    }

    #[test]
    fn figure7_ringtone_matches_paper_within_15_percent() {
        let comparison = architecture_comparison(
            &UseCaseSpec::ringtone(),
            &CostTable::paper(),
            &Architecture::standard_variants(),
        );
        for (variant, expected) in FIGURE7_PAPER {
            let actual = comparison.total_millis(variant).unwrap();
            assert!(
                within(actual, expected, 0.15),
                "Ringtone {variant}: model {actual:.1} ms vs paper {expected} ms"
            );
        }
    }

    #[test]
    fn figure6_headline_speedups_hold() {
        // "total processing time can be cut to almost a tenth ... by
        // realizing AES and SHA-1 as dedicated hardware macros".
        let comparison = architecture_comparison(
            &UseCaseSpec::music_player(),
            &CostTable::paper(),
            &Architecture::standard_variants(),
        );
        let sw_over_hybrid = comparison.speedup("SW", "SW/HW").unwrap();
        assert!(
            sw_over_hybrid > 8.0 && sw_over_hybrid < 12.0,
            "got {sw_over_hybrid}"
        );
        assert!(comparison.speedup("SW", "HW").unwrap() > 30.0);
        assert!(comparison.total_cycles("SW").unwrap() > comparison.total_cycles("HW").unwrap());
    }

    #[test]
    fn figure7_pki_hardware_is_the_significant_step() {
        // "In the Ringtone use case, the significant step occurs when
        // providing PKI hardware support."
        let comparison = architecture_comparison(
            &UseCaseSpec::ringtone(),
            &CostTable::paper(),
            &Architecture::standard_variants(),
        );
        let sw_to_hybrid = comparison.speedup("SW", "SW/HW").unwrap();
        let hybrid_to_hw = comparison.speedup("SW/HW", "HW").unwrap();
        assert!(
            sw_to_hybrid < 2.0,
            "AES/SHA-1 acceleration alone buys little: {sw_to_hybrid}"
        );
        assert!(
            hybrid_to_hw > 20.0,
            "PKI acceleration is the big step: {hybrid_to_hw}"
        );
    }

    #[test]
    fn pki_total_is_roughly_600ms_in_software() {
        // §4: the PKI operations "total to roughly 600ms" and are identical
        // for both use cases because they do not depend on the DCF size.
        let table = CostTable::paper();
        for spec in [UseCaseSpec::music_player(), UseCaseSpec::ringtone()] {
            let breakdown = algorithm_breakdown(&spec, &table);
            let pki_share = breakdown.share(BreakdownCategory::PkiPrivateKeyOp)
                + breakdown.share(BreakdownCategory::PkiPublicKeyOp);
            let pki_ms = breakdown.total_cycles as f64 * pki_share
                / 100.0
                / crate::arch::DEFAULT_CLOCK_HZ as f64
                * 1_000.0;
            assert!(
                (pki_ms - 600.0).abs() < 80.0,
                "{}: PKI total {pki_ms:.0} ms should be ~600 ms",
                spec.name()
            );
        }
    }

    #[test]
    fn figure5_shape_matches_paper() {
        let breakdowns = figure5(&CostTable::paper());
        assert_eq!(breakdowns.len(), 2);
        let ringtone = &breakdowns[0];
        let music = &breakdowns[1];
        assert_eq!(ringtone.use_case, "Ringtone");
        assert_eq!(music.use_case, "Music Player");

        // Ringtone: PKI private-key operations dominate.
        assert!(ringtone.share(BreakdownCategory::PkiPrivateKeyOp) > 50.0);
        // Music Player: AES decryption and SHA-1 dominate, PKI fades.
        assert!(music.share(BreakdownCategory::AesDecryption) > 50.0);
        assert!(music.share(BreakdownCategory::Sha1) > 20.0);
        assert!(music.share(BreakdownCategory::PkiPrivateKeyOp) < 10.0);

        for b in &breakdowns {
            let total: f64 = b.shares.iter().map(|(_, s)| s).sum();
            assert!(
                (total - 100.0).abs() < 1e-6,
                "{}: shares sum to {total}",
                b.use_case
            );
            assert!(!b.to_string().is_empty());
        }
    }

    #[test]
    fn measured_comparison_agrees_with_analytic_within_tolerance() {
        // The acceptance bar of the refactor: figures generated from
        // *measured* per-backend runs must match the analytic model within
        // the paper's approximation (protocol-message sizes are modelled
        // with representative constants, so a few percent of slack).
        let spec = UseCaseSpec::ringtone().with_rsa_modulus_bits(512);
        let table = CostTable::paper();
        let variants = Architecture::standard_variants();
        let measured = measured_architecture_comparison(&spec, &table, &variants, 7).unwrap();
        let analytic = architecture_comparison(&spec, &table, &variants);
        let consistency = consistency_check(&measured, &analytic);
        assert_eq!(consistency.entries.len(), 3);
        assert!(
            consistency.agrees_within(0.10),
            "measured vs analytic deviates by {:.1}%:\n{consistency}",
            consistency.max_relative_error() * 100.0
        );
        assert!(consistency.to_string().contains("Measured"));
        // The measured figures preserve the paper's headline ordering.
        assert!(measured.total_millis("SW").unwrap() > measured.total_millis("SW/HW").unwrap());
        assert!(measured.speedup("SW/HW", "HW").unwrap() > 20.0);
    }

    #[test]
    fn consistency_check_skips_unmatched_variants() {
        let measured = ArchitectureComparison {
            use_case: "x".into(),
            entries: vec![("SW".into(), 100, 1.0), ("EXTRA".into(), 50, 0.5)],
        };
        let analytic = ArchitectureComparison {
            use_case: "x".into(),
            entries: vec![("SW".into(), 110, 1.1)],
        };
        let consistency = consistency_check(&measured, &analytic);
        assert_eq!(consistency.entries.len(), 1);
        let expected = (1.0f64 - 1.0 / 1.1).abs();
        assert!((consistency.max_relative_error() - expected).abs() < 1e-9);
        assert!(!consistency.agrees_within(0.01));
    }

    #[test]
    fn fleet_summary_reports_throughput_and_phases() {
        let summary = FleetSummary {
            name: "Ringtone fleet".into(),
            workers: 8,
            devices: 512,
            elapsed_secs: 2.0,
            registrations: 512,
            rights_objects: 1024,
            phase_cycles: crate::runner::PhaseCycles {
                registration: 4_000,
                acquisition: 2_000,
                installation: 1_000,
                consumption_per_access: 500,
            },
        };
        assert!((summary.registrations_per_sec() - 256.0).abs() < 1e-9);
        assert!((summary.ros_per_sec() - 512.0).abs() < 1e-9);
        let text = summary.to_string();
        assert!(text.contains("registrations/s"));
        assert!(text.contains("registration"));
        assert!(text.contains("4000"));
    }

    #[test]
    fn energy_comparison_tracks_time_under_proportional_model() {
        let table = CostTable::paper();
        let variants = Architecture::standard_variants();
        let spec = UseCaseSpec::ringtone();
        let time = architecture_comparison(&spec, &table, &variants);
        let energy = energy_comparison(&spec, &table, &variants, &EnergyModel::proportional());
        let time_ratio = time.total_millis("SW").unwrap() / time.total_millis("HW").unwrap();
        let energy_ratio = energy.millijoules("SW").unwrap() / energy.millijoules("HW").unwrap();
        assert!((time_ratio - energy_ratio).abs() / time_ratio < 1e-9);
        assert!(energy.to_string().contains("Energy"));
    }
}
