//! Closed-form (analytic) operation counts per phase.
//!
//! This is the spreadsheet half of the paper's methodology: the list of
//! cryptographic operations performed in each phase, expressed as a function
//! of the content size and the (representative) ROAP message sizes. The
//! [`crate::runner`] module provides the *measured* counterpart, obtained by
//! actually running the protocol implementation; the two are cross-checked
//! against each other in the test suite.

use crate::phases::PhaseTraces;
use crate::usecase::UseCaseSpec;
use oma_crypto::{Algorithm, OpTrace};

/// Representative ROAP message and Rights Object sizes, in bytes.
///
/// These drive only the SHA-1 / HMAC block counts for protocol messages,
/// which are negligible next to the RSA operations; the values below are the
/// sizes produced by the reference implementation in `oma-drm` for typical
/// identifiers and 1024-bit certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageSizes {
    /// Signed portion of the RegistrationRequest (includes the device
    /// certificate).
    pub registration_request: usize,
    /// Signed portion of the RegistrationResponse (includes the RI
    /// certificate and the OCSP response).
    pub registration_response: usize,
    /// Canonical encoding of a certificate (hashed when verifying it).
    pub certificate: usize,
    /// Canonical encoding of an OCSP response.
    pub ocsp_response: usize,
    /// Signed portion of the RORequest.
    pub ro_request: usize,
    /// Signed portion of the ROResponse (includes the RO payload).
    pub ro_response: usize,
    /// Canonical encoding of the Rights Object payload (the MAC input).
    pub ro_payload: usize,
}

impl Default for MessageSizes {
    fn default() -> Self {
        MessageSizes {
            registration_request: 360,
            registration_response: 420,
            certificate: 230,
            ocsp_response: 80,
            ro_request: 140,
            ro_response: 560,
            ro_payload: 430,
        }
    }
}

fn blocks(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(16).max(1)
}

/// Number of SHA-1 input blocks KDF2 processes when deriving a 128-bit KEK
/// from a `modulus_bits`-bit KEM secret.
fn kdf_blocks(modulus_bits: usize) -> u64 {
    ((modulus_bits / 8 + 4) as u64).div_ceil(16)
}

/// AES block-cipher operations to (un)wrap `key_bytes` of key material with
/// RFC 3394 (6 per 64-bit block).
fn wrap_blocks(key_bytes: usize) -> u64 {
    6 * (key_bytes as u64 / 8)
}

/// Analytic registration-phase trace (paper §2.4.1): one device signature,
/// verification of the RI response signature, the RI certificate and the
/// OCSP response.
pub fn registration_trace(sizes: &MessageSizes) -> OpTrace {
    let mut t = OpTrace::new();
    // Sign the RegistrationRequest.
    t.record(Algorithm::RsaPrivate, 1, 1);
    t.record(Algorithm::Sha1, 1, blocks(sizes.registration_request));
    // Verify the RegistrationResponse signature, the RI certificate and the
    // OCSP response.
    t.record(Algorithm::RsaPublic, 3, 3);
    t.record(Algorithm::Sha1, 1, blocks(sizes.registration_response));
    t.record(Algorithm::Sha1, 1, blocks(sizes.certificate));
    t.record(Algorithm::Sha1, 1, blocks(sizes.ocsp_response));
    t
}

/// Analytic acquisition-phase trace (paper §2.4.2): one signed request, one
/// verified response.
pub fn acquisition_trace(sizes: &MessageSizes) -> OpTrace {
    let mut t = OpTrace::new();
    t.record(Algorithm::RsaPrivate, 1, 1);
    t.record(Algorithm::Sha1, 1, blocks(sizes.ro_request));
    t.record(Algorithm::RsaPublic, 1, 1);
    t.record(Algorithm::Sha1, 1, blocks(sizes.ro_response));
    t
}

/// Analytic installation-phase trace (paper §2.4.3, Figure 3): RSADP on
/// `C1`, KDF2, AES-unwrap of `C2`, MAC verification, and the re-wrap of
/// `K_MAC ‖ K_REK` under `K_DEV`.
pub fn installation_trace(sizes: &MessageSizes, rsa_modulus_bits: usize) -> OpTrace {
    let mut t = OpTrace::new();
    // RSADP(C1) + KDF2 + AESUNWRAP(C2).
    t.record(Algorithm::RsaPrivate, 1, 1);
    t.record(Algorithm::Sha1, 1, kdf_blocks(rsa_modulus_bits));
    t.record(Algorithm::AesDecrypt, 1, wrap_blocks(32));
    // RO integrity check.
    t.record(Algorithm::HmacSha1, 1, blocks(sizes.ro_payload));
    // Re-wrap under K_DEV -> C2dev.
    t.record(Algorithm::AesEncrypt, 1, wrap_blocks(32));
    t
}

/// Analytic consumption trace for a *single* access (paper §2.4.4 plus the
/// content decryption itself): unwrap `C2dev`, check the RO MAC, hash the
/// DCF, unwrap `K_CEK` and CBC-decrypt the payload.
pub fn consumption_trace(sizes: &MessageSizes, content_len: usize) -> OpTrace {
    let content_blocks = (content_len / 16 + 1) as u64;
    let mut t = OpTrace::new();
    // Step 1: decrypt C2dev with K_DEV.
    t.record(Algorithm::AesDecrypt, 1, wrap_blocks(32));
    // Step 2: verify RO MAC.
    t.record(Algorithm::HmacSha1, 1, blocks(sizes.ro_payload));
    // Step 3: verify DCF hash.
    t.record(Algorithm::Sha1, 1, content_blocks);
    // Unwrap K_CEK with K_REK.
    t.record(Algorithm::AesDecrypt, 1, wrap_blocks(16));
    // Decrypt the content for rendering.
    t.record(Algorithm::AesDecrypt, 1, content_blocks);
    t
}

/// Builds the full analytic [`PhaseTraces`] for a use case.
pub fn phase_traces(spec: &UseCaseSpec) -> PhaseTraces {
    phase_traces_with_sizes(spec, &MessageSizes::default())
}

/// [`phase_traces`] with explicit message sizes.
pub fn phase_traces_with_sizes(spec: &UseCaseSpec, sizes: &MessageSizes) -> PhaseTraces {
    PhaseTraces {
        registration: registration_trace(sizes),
        acquisition: acquisition_trace(sizes),
        installation: installation_trace(sizes, spec.rsa_modulus_bits()),
        consumption_per_access: consumption_trace(sizes, spec.content_len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_has_one_private_and_three_public_ops() {
        let t = registration_trace(&MessageSizes::default());
        assert_eq!(t.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(t.count(Algorithm::RsaPublic).invocations, 3);
        assert_eq!(t.count(Algorithm::AesDecrypt).blocks, 0);
    }

    #[test]
    fn acquisition_is_one_sign_one_verify() {
        let t = acquisition_trace(&MessageSizes::default());
        assert_eq!(t.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(t.count(Algorithm::RsaPublic).invocations, 1);
    }

    #[test]
    fn installation_unwraps_and_rewraps() {
        let t = installation_trace(&MessageSizes::default(), 1024);
        assert_eq!(t.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(t.count(Algorithm::RsaPublic).invocations, 0);
        assert_eq!(t.count(Algorithm::AesDecrypt).blocks, 24);
        assert_eq!(t.count(Algorithm::AesEncrypt).blocks, 24);
        assert_eq!(t.count(Algorithm::HmacSha1).invocations, 1);
        // KDF2 over a 1024-bit secret: 9 hash blocks.
        assert_eq!(t.count(Algorithm::Sha1).blocks, 9);
    }

    #[test]
    fn consumption_has_no_pki_operations() {
        let t = consumption_trace(&MessageSizes::default(), 30_720);
        assert_eq!(t.count(Algorithm::RsaPrivate).invocations, 0);
        assert_eq!(t.count(Algorithm::RsaPublic).invocations, 0);
        // Content hashing and decryption dominate the block counts.
        assert_eq!(t.count(Algorithm::Sha1).blocks, 30_720 / 16 + 1);
        assert_eq!(
            t.count(Algorithm::AesDecrypt).blocks,
            (30_720 / 16 + 1) + 24 + 12
        );
    }

    #[test]
    fn whole_lifecycle_has_three_private_key_ops() {
        // The paper's §4 observation: the PKI work is fixed at three RSA
        // private-key operations regardless of content size.
        for spec in [UseCaseSpec::music_player(), UseCaseSpec::ringtone()] {
            let traces = phase_traces(&spec);
            let setup = traces.setup_total();
            assert_eq!(
                setup.count(Algorithm::RsaPrivate).invocations,
                3,
                "{}",
                spec.name()
            );
            assert_eq!(
                setup.count(Algorithm::RsaPublic).invocations,
                4,
                "{}",
                spec.name()
            );
            let total = traces.total(spec.accesses());
            assert_eq!(
                total.count(Algorithm::RsaPrivate).invocations,
                3,
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn consumption_scales_with_content_size_not_pki() {
        let small = consumption_trace(&MessageSizes::default(), 30_720);
        let large = consumption_trace(&MessageSizes::default(), 3_670_016);
        assert!(large.count(Algorithm::Sha1).blocks > 100 * small.count(Algorithm::Sha1).blocks);
        assert_eq!(
            small.count(Algorithm::HmacSha1).blocks,
            large.count(Algorithm::HmacSha1).blocks
        );
    }

    #[test]
    fn helper_block_math() {
        assert_eq!(blocks(0), 1);
        assert_eq!(blocks(16), 1);
        assert_eq!(blocks(17), 2);
        assert_eq!(kdf_blocks(1024), 9);
        assert_eq!(kdf_blocks(512), 5);
        assert_eq!(wrap_blocks(32), 24);
        assert_eq!(wrap_blocks(16), 12);
    }
}
