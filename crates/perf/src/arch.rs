//! Architecture variants: which algorithms run on dedicated hardware macros
//! and which on the general-purpose processor core.
//!
//! The paper evaluates three variants of the application-processor SoC, all
//! clocked at 200 MHz:
//!
//! * **SW** — every algorithm in software on the processor core,
//! * **SW/HW** — AES and SHA-1 (and therefore HMAC SHA-1) as hardware
//!   macros, RSA in software,
//! * **HW** — dedicated macros for every algorithm.

use crate::cost::CostTable;
use oma_crypto::backend::{CryptoBackend, HwMacroBackend, Realisation, SoftwareBackend};
use oma_crypto::{Algorithm, OpTrace};
use std::sync::Arc;

/// Where one algorithm is realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Implementation {
    /// Software running on the general-purpose processor core.
    Software,
    /// A dedicated hardware macro attached to the system bus.
    Hardware,
}

/// The default clock frequency assumed by the paper (200 MHz).
pub const DEFAULT_CLOCK_HZ: u64 = 200_000_000;

/// A hardware/software partitioning of the six algorithms plus a clock
/// frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    name: String,
    assignments: [Implementation; 6],
    clock_hz: u64,
}

fn index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::AesEncrypt => 0,
        Algorithm::AesDecrypt => 1,
        Algorithm::Sha1 => 2,
        Algorithm::HmacSha1 => 3,
        Algorithm::RsaPublic => 4,
        Algorithm::RsaPrivate => 5,
    }
}

impl Architecture {
    /// A fully custom partitioning.
    pub fn custom(
        name: &str,
        assignment: impl Fn(Algorithm) -> Implementation,
        clock_hz: u64,
    ) -> Self {
        let mut assignments = [Implementation::Software; 6];
        for alg in Algorithm::ALL {
            assignments[index(alg)] = assignment(alg);
        }
        Architecture {
            name: name.to_string(),
            assignments,
            clock_hz,
        }
    }

    /// The pure-software variant ("SW").
    pub fn software() -> Self {
        Self::custom("SW", |_| Implementation::Software, DEFAULT_CLOCK_HZ)
    }

    /// The mixed variant ("SW/HW"): AES, SHA-1 and HMAC SHA-1 in hardware,
    /// RSA in software.
    pub fn hybrid() -> Self {
        Self::custom(
            "SW/HW",
            |alg| match alg {
                Algorithm::AesEncrypt
                | Algorithm::AesDecrypt
                | Algorithm::Sha1
                | Algorithm::HmacSha1 => Implementation::Hardware,
                Algorithm::RsaPublic | Algorithm::RsaPrivate => Implementation::Software,
            },
            DEFAULT_CLOCK_HZ,
        )
    }

    /// The full-hardware variant ("HW").
    pub fn full_hardware() -> Self {
        Self::custom("HW", |_| Implementation::Hardware, DEFAULT_CLOCK_HZ)
    }

    /// The three variants of the paper's evaluation, in figure order
    /// (SW, SW/HW, HW).
    pub fn standard_variants() -> Vec<Architecture> {
        vec![Self::software(), Self::hybrid(), Self::full_hardware()]
    }

    /// The variant name used in the figures.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Returns a copy with a different clock frequency.
    pub fn with_clock_hz(mut self, clock_hz: u64) -> Self {
        self.clock_hz = clock_hz;
        self
    }

    /// Where `algorithm` runs in this architecture.
    pub fn implementation_of(&self, algorithm: Algorithm) -> Implementation {
        self.assignments[index(algorithm)]
    }

    /// Whether any algorithm is realised in hardware.
    pub fn has_hardware(&self) -> bool {
        self.assignments.contains(&Implementation::Hardware)
    }

    /// Builds the executable [`CryptoBackend`] realising this architecture
    /// under `table`'s cycle costs: the pure-software variant maps onto
    /// [`SoftwareBackend`], every variant with at least one macro onto a
    /// partitioned [`HwMacroBackend`]. This is the 1:1 bridge between the
    /// analytic model's variants and the measured runner's backends.
    pub fn backend(&self, table: &CostTable) -> Arc<dyn CryptoBackend> {
        if !self.has_hardware() {
            return Arc::new(SoftwareBackend::named(
                &self.name,
                table.software_profile().clone(),
            ));
        }
        let assignments = self.assignments;
        Arc::new(HwMacroBackend::partitioned(
            &self.name,
            move |alg| match assignments[index(alg)] {
                Implementation::Software => Realisation::Software,
                Implementation::Hardware => Realisation::HardwareMacro,
            },
            table.software_profile().clone(),
            table.hardware_profile().clone(),
        ))
    }

    /// Cycles consumed to execute `trace` on this architecture under the
    /// given cost table.
    pub fn cycles(&self, trace: &OpTrace, table: &CostTable) -> u64 {
        trace
            .iter()
            .map(|(alg, count)| table.cost(alg, self.implementation_of(alg)).cycles(count))
            .sum()
    }

    /// Cycles per algorithm for `trace` (used for the Figure 5 breakdown).
    pub fn cycles_per_algorithm(
        &self,
        trace: &OpTrace,
        table: &CostTable,
    ) -> Vec<(Algorithm, u64)> {
        trace
            .iter()
            .map(|(alg, count)| {
                (
                    alg,
                    table.cost(alg, self.implementation_of(alg)).cycles(count),
                )
            })
            .collect()
    }

    /// Wall-clock milliseconds to execute `trace` on this architecture.
    pub fn millis(&self, trace: &OpTrace, table: &CostTable) -> f64 {
        self.cycles(trace, table) as f64 / self.clock_hz as f64 * 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> OpTrace {
        let mut t = OpTrace::new();
        t.record(Algorithm::AesDecrypt, 1, 1_000);
        t.record(Algorithm::Sha1, 1, 1_000);
        t.record(Algorithm::RsaPrivate, 2, 2);
        t
    }

    #[test]
    fn standard_variants_have_expected_assignments() {
        let sw = Architecture::software();
        let hybrid = Architecture::hybrid();
        let hw = Architecture::full_hardware();
        for alg in Algorithm::ALL {
            assert_eq!(sw.implementation_of(alg), Implementation::Software);
            assert_eq!(hw.implementation_of(alg), Implementation::Hardware);
        }
        assert_eq!(
            hybrid.implementation_of(Algorithm::AesDecrypt),
            Implementation::Hardware
        );
        assert_eq!(
            hybrid.implementation_of(Algorithm::Sha1),
            Implementation::Hardware
        );
        assert_eq!(
            hybrid.implementation_of(Algorithm::HmacSha1),
            Implementation::Hardware
        );
        assert_eq!(
            hybrid.implementation_of(Algorithm::RsaPrivate),
            Implementation::Software
        );
        assert!(!sw.has_hardware());
        assert!(hybrid.has_hardware());
        let names: Vec<String> = Architecture::standard_variants()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(names, vec!["SW", "SW/HW", "HW"]);
    }

    #[test]
    fn cycle_ordering_sw_ge_hybrid_ge_hw() {
        let table = CostTable::paper();
        let trace = sample_trace();
        let sw = Architecture::software().cycles(&trace, &table);
        let hybrid = Architecture::hybrid().cycles(&trace, &table);
        let hw = Architecture::full_hardware().cycles(&trace, &table);
        assert!(sw > hybrid, "sw={sw} hybrid={hybrid}");
        assert!(hybrid > hw, "hybrid={hybrid} hw={hw}");
    }

    #[test]
    fn cycles_match_manual_computation() {
        let table = CostTable::paper();
        let trace = sample_trace();
        let expected_sw = (950 + 830 * 1_000) + 400 * 1_000 + 2 * 37_740_000;
        assert_eq!(Architecture::software().cycles(&trace, &table), expected_sw);
        let expected_hw = (10 + 10 * 1_000) + 20 * 1_000 + 2 * 260_000;
        assert_eq!(
            Architecture::full_hardware().cycles(&trace, &table),
            expected_hw
        );
    }

    #[test]
    fn millis_uses_clock() {
        let table = CostTable::paper();
        let mut trace = OpTrace::new();
        trace.record(Algorithm::RsaPrivate, 1, 1);
        let arch = Architecture::software();
        let ms = arch.millis(&trace, &table);
        assert!(
            (ms - 188.7).abs() < 0.1,
            "37.74 Mcycles at 200 MHz = 188.7 ms, got {ms}"
        );
        let slow = Architecture::software().with_clock_hz(100_000_000);
        assert!((slow.millis(&trace, &table) - 2.0 * ms).abs() < 1e-9);
        assert_eq!(slow.clock_hz(), 100_000_000);
    }

    #[test]
    fn per_algorithm_breakdown_sums_to_total() {
        let table = CostTable::paper();
        let trace = sample_trace();
        for arch in Architecture::standard_variants() {
            let total: u64 = arch
                .cycles_per_algorithm(&trace, &table)
                .iter()
                .map(|(_, c)| c)
                .sum();
            assert_eq!(total, arch.cycles(&trace, &table));
        }
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let table = CostTable::paper();
        assert_eq!(Architecture::software().cycles(&OpTrace::new(), &table), 0);
        assert_eq!(
            Architecture::full_hardware().millis(&OpTrace::new(), &table),
            0.0
        );
    }

    #[test]
    fn custom_partitioning() {
        // RSA-only accelerator (the paper argues this is rarely worth it).
        let rsa_only = Architecture::custom(
            "RSA-HW",
            |alg| match alg {
                Algorithm::RsaPublic | Algorithm::RsaPrivate => Implementation::Hardware,
                _ => Implementation::Software,
            },
            DEFAULT_CLOCK_HZ,
        );
        assert_eq!(rsa_only.name(), "RSA-HW");
        assert_eq!(
            rsa_only.implementation_of(Algorithm::Sha1),
            Implementation::Software
        );
        assert_eq!(
            rsa_only.implementation_of(Algorithm::RsaPrivate),
            Implementation::Hardware
        );
    }
}
