//! Per-phase operation traces.
//!
//! The paper decomposes the DRM life-cycle into four phases (§2.4):
//! Registration, Acquisition, Installation and Consumption. The first three
//! run once per license; Consumption runs once per access to the content.

use oma_crypto::OpTrace;
use std::fmt;

/// A life-cycle phase of OMA DRM 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Establishing trust with the Rights Issuer (4-pass ROAP).
    Registration,
    /// Acquiring the Rights Object (2-pass ROAP).
    Acquisition,
    /// Unwrapping and re-protecting the Rights Object keys on the device.
    Installation,
    /// Accessing the protected content (runs once per access).
    Consumption,
}

impl Phase {
    /// All phases in life-cycle order.
    pub const ALL: [Phase; 4] = [
        Phase::Registration,
        Phase::Acquisition,
        Phase::Installation,
        Phase::Consumption,
    ];

    /// Human-readable phase name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Registration => "registration",
            Phase::Acquisition => "acquisition",
            Phase::Installation => "installation",
            Phase::Consumption => "consumption",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The operation traces of one full use case: one trace per one-shot phase
/// plus the per-access consumption trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTraces {
    /// Registration-phase operations (once).
    pub registration: OpTrace,
    /// Acquisition-phase operations (once).
    pub acquisition: OpTrace,
    /// Installation-phase operations (once).
    pub installation: OpTrace,
    /// Consumption operations for a *single* access.
    pub consumption_per_access: OpTrace,
}

impl PhaseTraces {
    /// An empty set of traces.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace of one phase (consumption returns the per-access trace).
    pub fn phase(&self, phase: Phase) -> &OpTrace {
        match phase {
            Phase::Registration => &self.registration,
            Phase::Acquisition => &self.acquisition,
            Phase::Installation => &self.installation,
            Phase::Consumption => &self.consumption_per_access,
        }
    }

    /// Mutable access to a phase trace.
    pub fn phase_mut(&mut self, phase: Phase) -> &mut OpTrace {
        match phase {
            Phase::Registration => &mut self.registration,
            Phase::Acquisition => &mut self.acquisition,
            Phase::Installation => &mut self.installation,
            Phase::Consumption => &mut self.consumption_per_access,
        }
    }

    /// Merges another set of phase traces into this one, phase by phase.
    /// Fleet aggregation uses this: per-device traces sum into a fleet-wide
    /// per-phase total, and because trace addition commutes the aggregate is
    /// independent of the order devices finished in.
    pub fn merge(&mut self, other: &PhaseTraces) {
        self.registration.merge(&other.registration);
        self.acquisition.merge(&other.acquisition);
        self.installation.merge(&other.installation);
        self.consumption_per_access
            .merge(&other.consumption_per_access);
    }

    /// Combined trace of the one-shot phases (registration + acquisition +
    /// installation).
    pub fn setup_total(&self) -> OpTrace {
        self.registration
            .merged(&self.acquisition)
            .merged(&self.installation)
    }

    /// Total trace for the whole use case with `accesses` content accesses.
    pub fn total(&self, accesses: u64) -> OpTrace {
        self.setup_total()
            .merged(&self.consumption_per_access.scaled(accesses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oma_crypto::Algorithm;

    fn traces() -> PhaseTraces {
        let mut t = PhaseTraces::new();
        t.registration.record(Algorithm::RsaPrivate, 1, 1);
        t.registration.record(Algorithm::RsaPublic, 3, 3);
        t.acquisition.record(Algorithm::RsaPrivate, 1, 1);
        t.installation.record(Algorithm::RsaPrivate, 1, 1);
        t.consumption_per_access
            .record(Algorithm::AesDecrypt, 1, 100);
        t
    }

    #[test]
    fn phase_enumeration() {
        assert_eq!(Phase::ALL.len(), 4);
        assert_eq!(Phase::Registration.to_string(), "registration");
        assert_eq!(Phase::Consumption.name(), "consumption");
    }

    #[test]
    fn phase_accessors_are_consistent() {
        let mut t = traces();
        for phase in Phase::ALL {
            let snapshot = t.phase(phase).clone();
            assert_eq!(&snapshot, t.phase_mut(phase));
        }
    }

    #[test]
    fn setup_total_excludes_consumption() {
        let t = traces();
        let setup = t.setup_total();
        assert_eq!(setup.count(Algorithm::RsaPrivate).invocations, 3);
        assert_eq!(setup.count(Algorithm::AesDecrypt).blocks, 0);
    }

    #[test]
    fn total_scales_consumption_by_accesses() {
        let t = traces();
        let total = t.total(25);
        assert_eq!(total.count(Algorithm::RsaPrivate).invocations, 3);
        assert_eq!(total.count(Algorithm::AesDecrypt).blocks, 2_500);
        assert_eq!(t.total(0).count(Algorithm::AesDecrypt).blocks, 0);
    }
}
