//! Measured traces: run the real OMA DRM 2 protocol from `oma-drm` with
//! synthetic content and record the operations the DRM Agent actually
//! performs.
//!
//! This is the Rust equivalent of the authors' Java functional model: the
//! operation lists are not hand-derived but extracted from a protocol run.
//! The analytic model in [`crate::analytic`] is cross-checked against these
//! measured traces in the test suite.

use crate::phases::PhaseTraces;
use crate::usecase::UseCaseSpec;
use oma_drm::{ContentIssuer, DrmAgent, DrmError, Permission, RightsIssuer, RightsTemplate};
use oma_pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Generates `len` bytes of deterministic synthetic content ("the 3.5 MB
/// track"). Content values do not influence the cost model; only the size
/// does.
pub fn synthetic_content(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// The result of a measured protocol run: per-phase traces plus the
/// decrypted content length (as a sanity check that the run really worked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredRun {
    /// The per-phase operation traces of the DRM Agent.
    pub traces: PhaseTraces,
    /// Length of the plaintext recovered during the first consumption.
    pub recovered_len: usize,
}

/// Runs the full use case (registration → acquisition → installation →
/// one consumption) against the reference implementation and returns the
/// recorded per-phase traces.
///
/// The RSA modulus size of `spec` is honoured, so tests can use small keys;
/// the *cost model* always charges RSA per 1024-bit operation exactly as the
/// paper does (the operation count is what matters, not the toy key size).
///
/// # Errors
///
/// Propagates any [`DrmError`] from the protocol run — a failure here means
/// the functional model itself is broken, not the measurement.
pub fn measure_use_case(spec: &UseCaseSpec, seed: u64) -> Result<MeasuredRun, DrmError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = spec.rsa_modulus_bits();
    let mut ca = CertificationAuthority::new("cmla", bits, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", bits, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut agent = DrmAgent::new("terminal-under-test", bits, &mut ca, &mut rng);

    let content = synthetic_content(spec.content_len(), seed ^ 0x5eed);
    let content_id = format!("cid:{}", spec.name().to_lowercase().replace(' ', "-"));
    let (dcf, cek) = ci.package(&content, &content_id, &mut rng);
    ri.add_content(&content_id, cek, &dcf, RightsTemplate::unlimited(Permission::Play));

    let now = Timestamp::new(1_000);
    let mut traces = PhaseTraces::new();
    agent.engine().reset_trace();

    agent.register(&mut ri, now)?;
    traces.registration = agent.engine().take_trace();

    let response = agent.acquire_rights(&mut ri, &content_id, now)?;
    traces.acquisition = agent.engine().take_trace();

    let ro_id = agent.install_rights(&response, now)?;
    traces.installation = agent.engine().take_trace();

    let plaintext = agent.consume(&ro_id, &dcf, Permission::Play, now)?;
    traces.consumption_per_access = agent.engine().take_trace();

    Ok(MeasuredRun { traces, recovered_len: plaintext.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use oma_crypto::Algorithm;

    /// A scaled-down spec that keeps the measured run fast in tests.
    fn small_spec() -> UseCaseSpec {
        UseCaseSpec::new("Ringtone", 30_720, 25).with_rsa_modulus_bits(512)
    }

    #[test]
    fn synthetic_content_is_deterministic() {
        assert_eq!(synthetic_content(100, 1), synthetic_content(100, 1));
        assert_ne!(synthetic_content(100, 1), synthetic_content(100, 2));
        assert_eq!(synthetic_content(0, 1).len(), 0);
    }

    #[test]
    fn measured_run_recovers_content() {
        let run = measure_use_case(&small_spec(), 7).unwrap();
        assert_eq!(run.recovered_len, 30_720);
        assert!(!run.traces.registration.is_empty());
        assert!(!run.traces.consumption_per_access.is_empty());
    }

    #[test]
    fn measured_invocation_counts_match_analytic_model() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 11).unwrap();
        // The analytic model charges RSA per 1024-bit op; for the
        // invocation-count comparison the key size is irrelevant.
        let analytic = analytic::phase_traces(&spec);

        for (phase, measured, modelled) in [
            ("registration", &run.traces.registration, &analytic.registration),
            ("acquisition", &run.traces.acquisition, &analytic.acquisition),
            ("installation", &run.traces.installation, &analytic.installation),
            (
                "consumption",
                &run.traces.consumption_per_access,
                &analytic.consumption_per_access,
            ),
        ] {
            for alg in [
                Algorithm::RsaPrivate,
                Algorithm::RsaPublic,
                Algorithm::HmacSha1,
                Algorithm::AesEncrypt,
                Algorithm::AesDecrypt,
            ] {
                assert_eq!(
                    measured.count(alg).invocations,
                    modelled.count(alg).invocations,
                    "{phase}: invocation count mismatch for {alg}"
                );
            }
        }
    }

    #[test]
    fn measured_content_blocks_match_analytic_model() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 13).unwrap();
        let analytic = analytic::phase_traces(&spec);
        // AES work in consumption is determined exactly by the content size.
        assert_eq!(
            run.traces.consumption_per_access.count(Algorithm::AesDecrypt).blocks,
            analytic.consumption_per_access.count(Algorithm::AesDecrypt).blocks
        );
        // SHA-1 block counts may differ slightly because the analytic model
        // uses representative message sizes; the content hash dominates.
        let measured = run.traces.consumption_per_access.count(Algorithm::Sha1).blocks as f64;
        let modelled = analytic.consumption_per_access.count(Algorithm::Sha1).blocks as f64;
        assert!(
            (measured - modelled).abs() / modelled < 0.05,
            "consumption hash blocks: measured {measured}, modelled {modelled}"
        );
    }

    #[test]
    fn protocol_message_hash_blocks_are_close_to_the_analytic_sizes() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 17).unwrap();
        let analytic = analytic::phase_traces(&spec);
        for (phase, measured, modelled) in [
            ("registration", &run.traces.registration, &analytic.registration),
            ("acquisition", &run.traces.acquisition, &analytic.acquisition),
        ] {
            let measured = measured.count(Algorithm::Sha1).blocks as i64;
            let modelled = modelled.count(Algorithm::Sha1).blocks as i64;
            // The analytic sizes assume 1024-bit certificates; the measured
            // run here uses 512-bit test keys, so allow a generous margin
            // (the whole discrepancy is worth < 30k cycles against the
            // ~38 Mcycle RSA operation in the same phase).
            assert!(
                (measured - modelled).abs() <= 40,
                "{phase}: measured {measured} hash blocks vs modelled {modelled}"
            );
        }
    }
}
