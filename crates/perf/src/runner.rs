//! Measured traces: run the real OMA DRM 2 protocol from `oma-drm` with
//! synthetic content and record the operations the DRM Agent actually
//! performs.
//!
//! This is the Rust equivalent of the authors' Java functional model: the
//! operation lists are not hand-derived but extracted from a protocol run.
//! The analytic model in [`crate::analytic`] is cross-checked against these
//! measured traces in the test suite.
//!
//! Beyond tracing, [`measure_use_case_on`] executes the protocol directly on
//! the crypto backend of any [`Architecture`] variant: the backend performs
//! every primitive (byte-identically across variants) while charging its own
//! Table 1 cycle bill, so the hardware/software partitionings are exercised,
//! not just priced.

use crate::arch::Architecture;
use crate::cost::CostTable;
use crate::phases::PhaseTraces;
use crate::usecase::UseCaseSpec;
use oma_drm::{ContentIssuer, DrmAgent, DrmError, Permission, RightsIssuer, RightsTemplate};
use oma_pki::{CertificationAuthority, Timestamp};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// Generates `len` bytes of deterministic synthetic content ("the 3.5 MB
/// track"). Content values do not influence the cost model; only the size
/// does.
pub fn synthetic_content(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// Cycles the DRM Agent's backend charged during each phase of a measured
/// run (the executable counterpart of pricing a trace under Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Registration-phase cycles (once per lifetime).
    pub registration: u64,
    /// Acquisition-phase cycles (once per license).
    pub acquisition: u64,
    /// Installation-phase cycles (once per license).
    pub installation: u64,
    /// Cycles for a *single* content access.
    pub consumption_per_access: u64,
}

impl PhaseCycles {
    /// Total cycles for a use case with `accesses` content accesses.
    pub fn total(&self, accesses: u64) -> u64 {
        self.registration
            + self.acquisition
            + self.installation
            + self.consumption_per_access * accesses
    }

    /// Adds another phase bill into this one. The `oma-load` fleet harness
    /// sums per-device bills into fleet-wide per-phase totals with this;
    /// addition commutes, so the aggregate is schedule-independent.
    ///
    /// In a merged aggregate the `consumption_per_access` field holds the
    /// *sum* of the merged consumption figures, no longer a per-access
    /// value — price such aggregates with [`PhaseCycles::sum`], not
    /// [`PhaseCycles::total`].
    pub fn merge(&mut self, other: &PhaseCycles) {
        self.registration += other.registration;
        self.acquisition += other.acquisition;
        self.installation += other.installation;
        self.consumption_per_access += other.consumption_per_access;
    }

    /// Grand total of the four phase fields as stored, with no per-access
    /// scaling. This is the correct total for [`PhaseCycles::merge`]d
    /// aggregates, where the consumption field already holds a sum over
    /// accesses.
    pub fn sum(&self) -> u64 {
        self.registration + self.acquisition + self.installation + self.consumption_per_access
    }

    /// The cycle count of one phase (the consumption field as stored: a
    /// per-access figure for a single measured run, a summed figure in a
    /// merged aggregate).
    pub fn phase(&self, phase: crate::phases::Phase) -> u64 {
        match phase {
            crate::phases::Phase::Registration => self.registration,
            crate::phases::Phase::Acquisition => self.acquisition,
            crate::phases::Phase::Installation => self.installation,
            crate::phases::Phase::Consumption => self.consumption_per_access,
        }
    }
}

/// The result of a measured protocol run: per-phase traces, the cycles the
/// backend charged per phase, and the decrypted content length (as a sanity
/// check that the run really worked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredRun {
    /// Name of the backend (architecture variant) the agent executed on.
    pub backend: String,
    /// The per-phase operation traces of the DRM Agent.
    pub traces: PhaseTraces,
    /// The per-phase cycle bill charged by the agent's backend.
    pub cycles: PhaseCycles,
    /// Length of the plaintext recovered during the first consumption.
    pub recovered_len: usize,
}

/// Runs the full use case (registration → acquisition → installation →
/// one consumption) on the pure-software backend and returns the recorded
/// per-phase traces.
///
/// The RSA modulus size of `spec` is honoured, so tests can use small keys;
/// the *cost model* always charges RSA per 1024-bit operation exactly as the
/// paper does (the operation count is what matters, not the toy key size).
///
/// # Errors
///
/// Propagates any [`DrmError`] from the protocol run — a failure here means
/// the functional model itself is broken, not the measurement.
pub fn measure_use_case(spec: &UseCaseSpec, seed: u64) -> Result<MeasuredRun, DrmError> {
    measure_use_case_on(spec, &Architecture::software(), &CostTable::paper(), seed)
}

/// Runs the full use case on the executable backend of `architecture`,
/// charging `table`'s cycle costs as the protocol executes.
///
/// Every [`Architecture::standard_variants`] entry maps 1:1 onto a backend
/// configuration via [`Architecture::backend`]; content, keys and protocol
/// bytes are identical across variants for the same `seed` — only the cycle
/// bill differs.
///
/// # Errors
///
/// Propagates any [`DrmError`] from the protocol run.
pub fn measure_use_case_on(
    spec: &UseCaseSpec,
    architecture: &Architecture,
    table: &CostTable,
    seed: u64,
) -> Result<MeasuredRun, DrmError> {
    let backend = architecture.backend(table);
    let mut rng = StdRng::seed_from_u64(seed);
    let bits = spec.rsa_modulus_bits();
    let mut ca = CertificationAuthority::new("cmla", bits, &mut rng);
    let mut ri = RightsIssuer::new("ri.example.com", bits, &mut ca, &mut rng);
    let ci = ContentIssuer::new("ci.example.com");
    let mut agent = DrmAgent::with_backend(
        "terminal-under-test",
        bits,
        &mut ca,
        Arc::clone(&backend),
        &mut rng,
    );

    let content = synthetic_content(spec.content_len(), seed ^ 0x5eed);
    let content_id = format!("cid:{}", spec.name().to_lowercase().replace(' ', "-"));
    let (dcf, cek) = ci.package(&content, &content_id, &mut rng);
    ri.add_content(
        &content_id,
        cek,
        &dcf,
        RightsTemplate::unlimited(Permission::Play),
    );

    let now = Timestamp::new(1_000);
    let mut traces = PhaseTraces::new();
    let mut cycles = PhaseCycles::default();
    agent.engine().reset_trace();
    backend.take_charged_cycles();

    agent.register_with(ri.service(), now)?;
    traces.registration = agent.engine().take_trace();
    cycles.registration = backend.take_charged_cycles();

    let response = agent.acquire_rights_with(ri.service(), &content_id, now)?;
    traces.acquisition = agent.engine().take_trace();
    cycles.acquisition = backend.take_charged_cycles();

    let ro_id = agent.install_rights(&response, now)?;
    traces.installation = agent.engine().take_trace();
    cycles.installation = backend.take_charged_cycles();

    let plaintext = agent.consume(&ro_id, &dcf, Permission::Play, now)?;
    traces.consumption_per_access = agent.engine().take_trace();
    cycles.consumption_per_access = backend.take_charged_cycles();

    Ok(MeasuredRun {
        backend: backend.name().to_string(),
        traces,
        cycles,
        recovered_len: plaintext.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use oma_crypto::Algorithm;

    /// A scaled-down spec that keeps the measured run fast in tests.
    fn small_spec() -> UseCaseSpec {
        UseCaseSpec::new("Ringtone", 30_720, 25).with_rsa_modulus_bits(512)
    }

    #[test]
    fn synthetic_content_is_deterministic() {
        assert_eq!(synthetic_content(100, 1), synthetic_content(100, 1));
        assert_ne!(synthetic_content(100, 1), synthetic_content(100, 2));
        assert_eq!(synthetic_content(0, 1).len(), 0);
    }

    #[test]
    fn measured_run_recovers_content() {
        let run = measure_use_case(&small_spec(), 7).unwrap();
        assert_eq!(run.recovered_len, 30_720);
        assert!(!run.traces.registration.is_empty());
        assert!(!run.traces.consumption_per_access.is_empty());
    }

    #[test]
    fn measured_invocation_counts_match_analytic_model() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 11).unwrap();
        // The analytic model charges RSA per 1024-bit op; for the
        // invocation-count comparison the key size is irrelevant.
        let analytic = analytic::phase_traces(&spec);

        for (phase, measured, modelled) in [
            (
                "registration",
                &run.traces.registration,
                &analytic.registration,
            ),
            (
                "acquisition",
                &run.traces.acquisition,
                &analytic.acquisition,
            ),
            (
                "installation",
                &run.traces.installation,
                &analytic.installation,
            ),
            (
                "consumption",
                &run.traces.consumption_per_access,
                &analytic.consumption_per_access,
            ),
        ] {
            for alg in [
                Algorithm::RsaPrivate,
                Algorithm::RsaPublic,
                Algorithm::HmacSha1,
                Algorithm::AesEncrypt,
                Algorithm::AesDecrypt,
            ] {
                assert_eq!(
                    measured.count(alg).invocations,
                    modelled.count(alg).invocations,
                    "{phase}: invocation count mismatch for {alg}"
                );
            }
        }
    }

    #[test]
    fn measured_content_blocks_match_analytic_model() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 13).unwrap();
        let analytic = analytic::phase_traces(&spec);
        // AES work in consumption is determined exactly by the content size.
        assert_eq!(
            run.traces
                .consumption_per_access
                .count(Algorithm::AesDecrypt)
                .blocks,
            analytic
                .consumption_per_access
                .count(Algorithm::AesDecrypt)
                .blocks
        );
        // SHA-1 block counts may differ slightly because the analytic model
        // uses representative message sizes; the content hash dominates.
        let measured = run
            .traces
            .consumption_per_access
            .count(Algorithm::Sha1)
            .blocks as f64;
        let modelled = analytic
            .consumption_per_access
            .count(Algorithm::Sha1)
            .blocks as f64;
        assert!(
            (measured - modelled).abs() / modelled < 0.05,
            "consumption hash blocks: measured {measured}, modelled {modelled}"
        );
    }

    #[test]
    fn all_standard_variants_execute_and_recover_content() {
        let spec = small_spec();
        let table = CostTable::paper();
        for arch in Architecture::standard_variants() {
            let run = measure_use_case_on(&spec, &arch, &table, 23).unwrap();
            assert_eq!(run.backend, arch.name());
            assert_eq!(run.recovered_len, 30_720, "{}", arch.name());
            assert!(run.cycles.registration > 0, "{}", arch.name());
            assert!(run.cycles.consumption_per_access > 0, "{}", arch.name());
        }
    }

    #[test]
    fn traces_are_identical_across_backends_only_cycles_differ() {
        // The hardware macros implement the same algorithms: for one seed,
        // every variant performs the same operations on the same bytes.
        let spec = small_spec();
        let table = CostTable::paper();
        let runs: Vec<MeasuredRun> = Architecture::standard_variants()
            .iter()
            .map(|arch| measure_use_case_on(&spec, arch, &table, 29).unwrap())
            .collect();
        assert_eq!(runs[0].traces, runs[1].traces);
        assert_eq!(runs[0].traces, runs[2].traces);
        let totals: Vec<u64> = runs
            .iter()
            .map(|r| r.cycles.total(spec.accesses()))
            .collect();
        assert!(
            totals[0] > totals[1],
            "SW {} must out-cycle SW/HW {}",
            totals[0],
            totals[1]
        );
        assert!(
            totals[1] > totals[2],
            "SW/HW {} must out-cycle HW {}",
            totals[1],
            totals[2]
        );
    }

    #[test]
    fn backend_charged_cycles_equal_priced_trace_exactly() {
        // The backend's cycle meter and the Table 1 pricing of the recorded
        // trace are two views of one accounting; per phase they must agree
        // to the cycle.
        let spec = small_spec();
        let table = CostTable::paper();
        for arch in Architecture::standard_variants() {
            let run = measure_use_case_on(&spec, &arch, &table, 31).unwrap();
            for (phase, trace, charged) in [
                (
                    "registration",
                    &run.traces.registration,
                    run.cycles.registration,
                ),
                (
                    "acquisition",
                    &run.traces.acquisition,
                    run.cycles.acquisition,
                ),
                (
                    "installation",
                    &run.traces.installation,
                    run.cycles.installation,
                ),
                (
                    "consumption",
                    &run.traces.consumption_per_access,
                    run.cycles.consumption_per_access,
                ),
            ] {
                assert_eq!(
                    charged,
                    arch.cycles(trace, &table),
                    "{}/{phase}: meter and priced trace disagree",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn phase_cycles_total_scales_consumption() {
        let cycles = PhaseCycles {
            registration: 100,
            acquisition: 10,
            installation: 1,
            consumption_per_access: 7,
        };
        assert_eq!(cycles.total(0), 111);
        assert_eq!(cycles.total(25), 111 + 175);
        assert_eq!(cycles.sum(), 118, "sum never scales consumption");
    }

    #[test]
    fn phase_cycles_merge_accumulates_fieldwise() {
        let mut a = PhaseCycles {
            registration: 1,
            acquisition: 2,
            installation: 3,
            consumption_per_access: 4,
        };
        let b = PhaseCycles {
            registration: 10,
            acquisition: 20,
            installation: 30,
            consumption_per_access: 40,
        };
        a.merge(&b);
        assert_eq!(a.registration, 11);
        assert_eq!(a.phase(crate::phases::Phase::Consumption), 44);
        assert_eq!(a.sum(), 110);
    }

    #[test]
    fn protocol_message_hash_blocks_are_close_to_the_analytic_sizes() {
        let spec = small_spec();
        let run = measure_use_case(&spec, 17).unwrap();
        let analytic = analytic::phase_traces(&spec);
        for (phase, measured, modelled) in [
            (
                "registration",
                &run.traces.registration,
                &analytic.registration,
            ),
            (
                "acquisition",
                &run.traces.acquisition,
                &analytic.acquisition,
            ),
        ] {
            let measured = measured.count(Algorithm::Sha1).blocks as i64;
            let modelled = modelled.count(Algorithm::Sha1).blocks as i64;
            // The analytic sizes assume 1024-bit certificates; the measured
            // run here uses 512-bit test keys, so allow a generous margin
            // (the whole discrepancy is worth < 30k cycles against the
            // ~38 Mcycle RSA operation in the same phase).
            assert!(
                (measured - modelled).abs() <= 40,
                "{phase}: measured {measured} hash blocks vs modelled {modelled}"
            );
        }
    }
}
