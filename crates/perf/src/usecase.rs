//! The end-user use cases of the paper's evaluation (chapter 4).
//!
//! * **Music Player** — a 3.5 MB encrypted track; the user registers,
//!   acquires and installs a license, then listens to the track five times.
//! * **Ringtone** — a 30 KB high-quality polyphonic ringtone; the user
//!   registers, acquires and installs a license, then the phone rings 25
//!   times and the DRM Agent must unlock the file for every ring.
//!
//! The two differ only in content size and number of accesses, which is
//! exactly why they discriminate so sharply between bulk-data acceleration
//! (AES/SHA-1) and PKI acceleration (RSA).

/// Parameters of one evaluation use case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseCaseSpec {
    name: String,
    content_len: usize,
    accesses: u64,
    rsa_modulus_bits: usize,
}

impl UseCaseSpec {
    /// Creates a custom use case.
    ///
    /// # Panics
    ///
    /// Panics if `content_len` is zero.
    pub fn new(name: &str, content_len: usize, accesses: u64) -> Self {
        assert!(content_len > 0, "use case content must be non-empty");
        UseCaseSpec {
            name: name.to_string(),
            content_len,
            accesses,
            rsa_modulus_bits: 1024,
        }
    }

    /// The paper's Music Player use case: 3.5 MB DCF, five playbacks
    /// (3.5 · 2²⁰ bytes, the interpretation that reproduces Figure 6).
    pub fn music_player() -> Self {
        Self::new("Music Player", 3_670_016, 5)
    }

    /// The paper's Ringtone use case: 30 KB DCF, 25 calls (30 · 2¹⁰ bytes).
    pub fn ringtone() -> Self {
        Self::new("Ringtone", 30_720, 25)
    }

    /// Both paper use cases, in figure order (Ringtone, Music Player —
    /// the order of Figure 5's x-axis).
    pub fn paper_use_cases() -> Vec<UseCaseSpec> {
        vec![Self::ringtone(), Self::music_player()]
    }

    /// Use case name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Plaintext content size in bytes.
    pub fn content_len(&self) -> usize {
        self.content_len
    }

    /// Number of content accesses (playbacks / rings).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// RSA modulus size used by the PKI (1024 bits in the standard).
    pub fn rsa_modulus_bits(&self) -> usize {
        self.rsa_modulus_bits
    }

    /// Returns a copy with a different access count (e.g. for sweeps over
    /// the number of playbacks).
    pub fn with_accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Returns a copy with a different content size (e.g. for sweeps over
    /// file size to locate the SW/HW crossover).
    pub fn with_content_len(mut self, content_len: usize) -> Self {
        assert!(content_len > 0, "use case content must be non-empty");
        self.content_len = content_len;
        self
    }

    /// Returns a copy with a different RSA modulus size (used by the
    /// measured runner to keep tests fast; the cost model always charges
    /// RSA per 1024-bit operation as the paper does).
    pub fn with_rsa_modulus_bits(mut self, bits: usize) -> Self {
        self.rsa_modulus_bits = bits;
        self
    }

    /// Number of 128-bit blocks in the *encrypted* content (including the
    /// CBC padding block).
    pub fn encrypted_content_blocks(&self) -> u64 {
        (self.content_len / 16 + 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_use_cases_match_the_text() {
        let music = UseCaseSpec::music_player();
        assert_eq!(music.name(), "Music Player");
        assert_eq!(music.content_len(), 3_670_016);
        assert_eq!(music.accesses(), 5);
        let ring = UseCaseSpec::ringtone();
        assert_eq!(ring.content_len(), 30_720);
        assert_eq!(ring.accesses(), 25);
        assert_eq!(UseCaseSpec::paper_use_cases().len(), 2);
        assert_eq!(music.rsa_modulus_bits(), 1024);
    }

    #[test]
    fn builders() {
        let sweep = UseCaseSpec::ringtone()
            .with_accesses(100)
            .with_content_len(64_000);
        assert_eq!(sweep.accesses(), 100);
        assert_eq!(sweep.content_len(), 64_000);
        assert_eq!(sweep.name(), "Ringtone");
        assert_eq!(
            UseCaseSpec::music_player()
                .with_rsa_modulus_bits(512)
                .rsa_modulus_bits(),
            512
        );
    }

    #[test]
    fn encrypted_blocks_include_padding() {
        assert_eq!(UseCaseSpec::new("x", 16, 1).encrypted_content_blocks(), 2);
        assert_eq!(UseCaseSpec::new("x", 15, 1).encrypted_content_blocks(), 1);
        assert_eq!(
            UseCaseSpec::music_player().encrypted_content_blocks(),
            3_670_016 / 16 + 1
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_content_rejected() {
        UseCaseSpec::new("bad", 0, 1);
    }
}
