//! Backend-parity property tests: the software backend and the simulated
//! hardware-macro backend must produce **byte-identical** ciphertexts,
//! hashes, MACs, wrapped keys and signatures for random inputs — the
//! hardware macros implement the same standardised algorithms, only their
//! cycle bill differs.

use oma_crypto::backend::{CryptoBackend, HwMacroBackend, Realisation, SoftwareBackend};
use oma_crypto::rsa::{RsaKeyPair, RsaPrivateKey};
use oma_crypto::{cbc, kdf, kem, keywrap, pss, Algorithm, CryptoEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

/// A fixed 512-bit test key pair (RSA keygen dominates the suite's runtime;
/// the properties vary the data, not the key).
fn test_pair() -> &'static RsaKeyPair {
    static PAIR: OnceLock<RsaKeyPair> = OnceLock::new();
    PAIR.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0x9a17)))
}

/// The three backend configurations of the paper's evaluation.
fn backends() -> Vec<Box<dyn CryptoBackend>> {
    vec![
        Box::new(SoftwareBackend::new()),
        Box::new(HwMacroBackend::hybrid()),
        Box::new(HwMacroBackend::full()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cbc_ciphertexts_are_byte_identical(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(),
                                          plaintext in proptest::collection::vec(any::<u8>(), 0..512)) {
        let reference = cbc::encrypt(&key, &iv, &plaintext).unwrap();
        for backend in backends() {
            let ct = cbc::encrypt_with(backend.as_ref(), &key, &iv, &plaintext).unwrap();
            prop_assert_eq!(&ct, &reference, "encrypt on {}", backend.name());
            let pt = cbc::decrypt_with(backend.as_ref(), &key, &iv, &ct).unwrap();
            prop_assert_eq!(&pt, &plaintext, "decrypt on {}", backend.name());
        }
    }

    #[test]
    fn keywrap_outputs_are_byte_identical(kek in any::<[u8; 16]>(), blocks in 2usize..8) {
        let data: Vec<u8> = (0..blocks * 8).map(|i| (i * 31 + 7) as u8).collect();
        let reference = keywrap::wrap(&kek, &data).unwrap();
        for backend in backends() {
            let wrapped = keywrap::wrap_with(backend.as_ref(), &kek, &data).unwrap();
            prop_assert_eq!(&wrapped, &reference, "wrap on {}", backend.name());
            let unwrapped = keywrap::unwrap_with(backend.as_ref(), &kek, &wrapped).unwrap();
            prop_assert_eq!(&unwrapped, &data, "unwrap on {}", backend.name());
        }
    }

    #[test]
    fn hashes_and_macs_are_byte_identical(key in proptest::collection::vec(any::<u8>(), 1..64),
                                          data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let sw = SoftwareBackend::new();
        let reference_hash = sw.sha1(&data);
        let reference_mac = sw.hmac_sha1(&key, &data);
        for backend in backends() {
            prop_assert_eq!(backend.sha1(&data), reference_hash, "sha1 on {}", backend.name());
            prop_assert_eq!(backend.hmac_sha1(&key, &data), reference_mac, "hmac on {}", backend.name());
        }
    }

    #[test]
    fn kdf2_outputs_are_byte_identical(z in proptest::collection::vec(any::<u8>(), 1..64),
                                       len in 1usize..48) {
        let reference = kdf::kdf2(&z, b"", len);
        for backend in backends() {
            prop_assert_eq!(
                kdf::kdf2_with(backend.as_ref(), &z, b"", len),
                reference.clone(),
                "kdf2 on {}",
                backend.name()
            );
        }
    }

    #[test]
    fn pss_signatures_are_byte_identical(message in proptest::collection::vec(any::<u8>(), 0..256),
                                         seed in any::<u64>()) {
        let pair = test_pair();
        let reference = {
            let mut rng = StdRng::seed_from_u64(seed);
            pss::sign(pair.private(), &message, &mut rng).unwrap()
        };
        for backend in backends() {
            let mut rng = StdRng::seed_from_u64(seed);
            let sig = pss::sign_with(backend.as_ref(), pair.private(), &message, &mut rng).unwrap();
            prop_assert_eq!(&sig, &reference, "sign on {}", backend.name());
            prop_assert!(
                pss::verify_with(backend.as_ref(), pair.public(), &message, &sig),
                "verify on {}",
                backend.name()
            );
        }
    }

    #[test]
    fn kem_wrappings_are_byte_identical(kmac in any::<[u8; 16]>(), krek in any::<[u8; 16]>(),
                                        seed in any::<u64>()) {
        let pair = test_pair();
        let reference = {
            let mut rng = StdRng::seed_from_u64(seed);
            kem::wrap_keys(pair.public(), &kmac, &krek, &mut rng).unwrap()
        };
        for backend in backends() {
            let mut rng = StdRng::seed_from_u64(seed);
            let wrapped =
                kem::wrap_keys_with(backend.as_ref(), pair.public(), &kmac, &krek, &mut rng).unwrap();
            prop_assert_eq!(&wrapped, &reference, "kem wrap on {}", backend.name());
            let (m, r) = kem::unwrap_keys_with(backend.as_ref(), pair.private(), &wrapped).unwrap();
            prop_assert_eq!(m, kmac, "kmac on {}", backend.name());
            prop_assert_eq!(r, krek, "krek on {}", backend.name());
        }
    }

    #[test]
    fn engines_on_different_backends_interoperate(data in proptest::collection::vec(any::<u8>(), 1..512),
                                                  seed in any::<u64>()) {
        // An HW-terminal engine and a SW-terminal engine with the same seed
        // produce identical protocol bytes and can verify each other's MACs.
        let sw_engine = CryptoEngine::with_seed(seed);
        let hw_engine = CryptoEngine::with_backend(Arc::new(HwMacroBackend::full()), seed);
        let key = sw_engine.random_key();
        prop_assert_eq!(key, hw_engine.random_key());
        let iv = [3u8; 16];
        let sw_ct = sw_engine.aes_cbc_encrypt(&key, &iv, &data).unwrap();
        let hw_ct = hw_engine.aes_cbc_encrypt(&key, &iv, &data).unwrap();
        prop_assert_eq!(&sw_ct, &hw_ct);
        let tag = hw_engine.hmac_sha1(&key, &data);
        prop_assert!(sw_engine.hmac_sha1_verify(&key, &data, &tag));
        // Identical traces, divergent cycle bills.
        prop_assert_eq!(sw_engine.trace(), hw_engine.trace());
        prop_assert!(sw_engine.charged_cycles() > hw_engine.charged_cycles());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The cached Montgomery contexts on the key types are a pure
    /// optimisation: repeated primitives through a warm key, a cloned key
    /// (sharing the warm contexts), and a cold key rebuilt from raw
    /// components must all emit identical bytes on every backend.
    #[test]
    fn cached_contexts_keep_primitives_byte_identical(message in 1u64..u64::MAX,
                                                      seed in any::<u64>()) {
        let pair = test_pair();
        let m = oma_bignum::BigUint::from_u64(message);
        let cold = RsaPrivateKey::from_components(
            pair.public().clone(),
            pair.private().d().clone(),
            pair.private().primes().0.clone(),
            pair.private().primes().1.clone(),
        )
        .unwrap();
        let cloned = pair.private().clone();
        let reference_ct = pair.public().rsaep(&m).unwrap();
        let reference_pt = pair.private().rsadp(&reference_ct).unwrap();
        prop_assert_eq!(&reference_pt, &m);
        // Two more rounds through the warm contexts: caching must not drift.
        for key in [pair.private(), &cloned, &cold] {
            for _ in 0..2 {
                prop_assert_eq!(&key.public().rsaep(&m).unwrap(), &reference_ct);
                prop_assert_eq!(&key.rsadp(&reference_ct).unwrap(), &reference_pt);
            }
        }
        // PSS after an explicit warm-up still matches all backends.
        let payload = message.to_be_bytes();
        cold.precompute();
        cold.public().precompute();
        let reference_sig = {
            let mut rng = StdRng::seed_from_u64(seed);
            pss::sign(pair.private(), &payload, &mut rng).unwrap()
        };
        for backend in backends() {
            let mut rng = StdRng::seed_from_u64(seed);
            let sig = pss::sign_with(backend.as_ref(), &cold, &payload, &mut rng).unwrap();
            prop_assert_eq!(&sig, &reference_sig, "warm sign on {}", backend.name());
            prop_assert!(
                pss::verify_with(backend.as_ref(), cold.public(), &payload, &sig),
                "warm verify on {}",
                backend.name()
            );
        }
    }
}

#[test]
fn backend_realisations_match_variants() {
    let hybrid = HwMacroBackend::hybrid();
    assert_eq!(
        hybrid.realisation(Algorithm::AesDecrypt),
        Realisation::HardwareMacro
    );
    assert_eq!(
        hybrid.realisation(Algorithm::RsaPrivate),
        Realisation::Software
    );
    let full = HwMacroBackend::full();
    for alg in Algorithm::ALL {
        assert_eq!(full.realisation(alg), Realisation::HardwareMacro);
    }
}
