//! Property-based tests for the cryptographic primitives.

use oma_crypto::rsa::RsaKeyPair;
use oma_crypto::{cbc, hmac, kdf, keywrap, pss, sha1};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// A fixed 512-bit test key pair, generated once (RSA keygen is the slowest
/// operation in the suite; property tests reuse one key and vary the data).
fn test_pair() -> &'static RsaKeyPair {
    static PAIR: OnceLock<RsaKeyPair> = OnceLock::new();
    PAIR.get_or_init(|| RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0xabcd)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cbc_roundtrip(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(),
                     plaintext in proptest::collection::vec(any::<u8>(), 0..512)) {
        let ct = cbc::encrypt(&key, &iv, &plaintext).unwrap();
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > plaintext.len());
        prop_assert_eq!(cbc::decrypt(&key, &iv, &ct).unwrap(), plaintext);
    }

    #[test]
    fn cbc_ciphertext_differs_from_plaintext(key in any::<[u8; 16]>(), iv in any::<[u8; 16]>(),
                                             plaintext in proptest::collection::vec(any::<u8>(), 16..256)) {
        let ct = cbc::encrypt(&key, &iv, &plaintext).unwrap();
        prop_assert_ne!(&ct[..plaintext.len()], &plaintext[..]);
    }

    #[test]
    fn keywrap_roundtrip(kek in any::<[u8; 16]>(), blocks in 2usize..8) {
        let data: Vec<u8> = (0..blocks * 8).map(|i| i as u8).collect();
        let wrapped = keywrap::wrap(&kek, &data).unwrap();
        prop_assert_eq!(wrapped.len(), data.len() + 8);
        prop_assert_eq!(keywrap::unwrap(&kek, &wrapped).unwrap(), data);
    }

    #[test]
    fn keywrap_detects_any_single_bit_flip(kek in any::<[u8; 16]>(), byte in 0usize..40, bit in 0u8..8) {
        let data = [0x5au8; 32];
        let mut wrapped = keywrap::wrap(&kek, &data).unwrap();
        wrapped[byte] ^= 1 << bit;
        prop_assert!(keywrap::unwrap(&kek, &wrapped).is_err());
    }

    #[test]
    fn sha1_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                       split in 0usize..2048) {
        let split = split.min(data.len());
        let mut hasher = sha1::Sha1::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha1::sha1(&data));
    }

    #[test]
    fn hmac_is_deterministic_and_key_sensitive(key in proptest::collection::vec(any::<u8>(), 1..80),
                                               data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let a = hmac::hmac_sha1(&key, &data);
        let b = hmac::hmac_sha1(&key, &data);
        prop_assert_eq!(a, b);
        let mut other_key = key.clone();
        other_key[0] ^= 1;
        prop_assert_ne!(hmac::hmac_sha1(&other_key, &data), a);
    }

    #[test]
    fn kdf2_prefix_consistency(z in proptest::collection::vec(any::<u8>(), 1..64),
                               len_a in 1usize..40, len_b in 1usize..40) {
        // KDF2 output for a shorter length is a prefix of the longer output.
        let short = len_a.min(len_b);
        let long = len_a.max(len_b);
        let a = kdf::kdf2(&z, b"", short);
        let b = kdf::kdf2(&z, b"", long);
        prop_assert_eq!(&b[..short], &a[..]);
    }

    #[test]
    fn pss_sign_verify(message in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        let pair = test_pair();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = pss::sign(pair.private(), &message, &mut rng).unwrap();
        prop_assert!(pss::verify(pair.public(), &message, &sig));
    }

    #[test]
    fn pss_rejects_modified_message(message in proptest::collection::vec(any::<u8>(), 1..256),
                                    flip in 0usize..256, seed in any::<u64>()) {
        let pair = test_pair();
        let mut rng = StdRng::seed_from_u64(seed);
        let sig = pss::sign(pair.private(), &message, &mut rng).unwrap();
        let mut tampered = message.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!pss::verify(pair.public(), &tampered, &sig));
    }

    #[test]
    fn kem_roundtrip(kmac in any::<[u8; 16]>(), krek in any::<[u8; 16]>(), seed in any::<u64>()) {
        let pair = test_pair();
        let mut rng = StdRng::seed_from_u64(seed);
        let wrapped = oma_crypto::kem::wrap_keys(pair.public(), &kmac, &krek, &mut rng).unwrap();
        let (m, r) = oma_crypto::kem::unwrap_keys(pair.private(), &wrapped).unwrap();
        prop_assert_eq!(m, kmac);
        prop_assert_eq!(r, krek);
    }

    #[test]
    fn rsa_primitive_roundtrip(payload in proptest::collection::vec(any::<u8>(), 1..48)) {
        // 48 bytes < 64-byte modulus, so always in range.
        let pair = test_pair();
        let mut data = payload;
        data[0] |= 1; // avoid the all-zero corner case after stripping
        let ct = pair.public().encrypt_os(&data).unwrap();
        let pt = pair.private().decrypt_os(&ct).unwrap();
        prop_assert_eq!(&pt[pt.len() - data.len()..], &data[..]);
    }
}
