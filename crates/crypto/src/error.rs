//! Error type shared by the cryptographic modules.

use std::error::Error;
use std::fmt;

/// Errors reported by the cryptographic primitives in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A key had the wrong length for the requested algorithm.
    InvalidKeyLength {
        /// Expected key length in bytes.
        expected: usize,
        /// Actual key length in bytes.
        actual: usize,
    },
    /// Ciphertext or wrapped-key input had an invalid length.
    InvalidInputLength {
        /// Human-readable description of the expectation.
        expected: &'static str,
        /// Actual input length in bytes.
        actual: usize,
    },
    /// PKCS#7 padding was malformed after decryption.
    InvalidPadding,
    /// The integrity check of an AES key unwrap failed (RFC 3394 IV mismatch).
    KeyUnwrapIntegrity,
    /// A value passed to an RSA primitive was out of range
    /// (message representative not in `[0, n-1]`).
    MessageRepresentativeOutOfRange,
    /// An RSA-PSS signature failed to verify.
    InvalidSignature,
    /// The RSA key was too small for the requested operation.
    KeyTooSmall,
    /// Decryption produced data that could not be interpreted
    /// (e.g. wrapped key of the wrong size).
    MalformedPlaintext(&'static str),
    /// RSA key components do not form a consistent key
    /// (e.g. `p`/`q` without the modular inverses CRT needs).
    InvalidKeyComponents,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {actual}"
                )
            }
            CryptoError::InvalidInputLength { expected, actual } => {
                write!(
                    f,
                    "invalid input length: expected {expected}, got {actual} bytes"
                )
            }
            CryptoError::InvalidPadding => write!(f, "invalid PKCS#7 padding"),
            CryptoError::KeyUnwrapIntegrity => {
                write!(f, "AES key unwrap integrity check failed")
            }
            CryptoError::MessageRepresentativeOutOfRange => {
                write!(f, "message representative out of range for RSA modulus")
            }
            CryptoError::InvalidSignature => write!(f, "signature verification failed"),
            CryptoError::KeyTooSmall => write!(f, "RSA key too small for this operation"),
            CryptoError::MalformedPlaintext(what) => {
                write!(f, "decrypted data is malformed: {what}")
            }
            CryptoError::InvalidKeyComponents => {
                write!(f, "RSA key components are inconsistent")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CryptoError::InvalidKeyLength {
            expected: 16,
            actual: 10,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("10"));
        assert!(!CryptoError::InvalidPadding.to_string().is_empty());
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CryptoError>();
    }
}
