//! HMAC with SHA-1 (RFC 2104), the MAC algorithm mandated by OMA DRM 2 for
//! Rights Object integrity protection.

use crate::sha1::{Sha1, BLOCK_SIZE, DIGEST_SIZE};

/// Computes `HMAC-SHA1(key, message)`.
///
/// Keys longer than the SHA-1 block size are hashed first, exactly as RFC
/// 2104 prescribes.
///
/// # Example
///
/// ```
/// use oma_crypto::hmac::hmac_sha1;
/// let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(tag[0], 0xef);
/// ```
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; DIGEST_SIZE] {
    HmacSha1::new(key).chain(message).finalize()
}

/// Incremental HMAC-SHA1 computation.
///
/// # Example
///
/// ```
/// use oma_crypto::hmac::{hmac_sha1, HmacSha1};
/// let mut mac = HmacSha1::new(b"key");
/// mac.update(b"part one ");
/// mac.update(b"part two");
/// assert_eq!(mac.finalize(), hmac_sha1(b"key", b"part one part two"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha1 {
    inner: Sha1,
    outer_key_pad: [u8; BLOCK_SIZE],
}

impl HmacSha1 {
    /// Creates an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut normalized_key = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = crate::sha1::sha1(key);
            normalized_key[..DIGEST_SIZE].copy_from_slice(&digest);
        } else {
            normalized_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_SIZE];
        let mut opad = [0x5cu8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] ^= normalized_key[i];
            opad[i] ^= normalized_key[i];
        }
        let mut inner = Sha1::new();
        inner.update(&ipad);
        HmacSha1 {
            inner,
            outer_key_pad: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Builder-style [`HmacSha1::update`].
    pub fn chain(mut self, message: &[u8]) -> Self {
        self.update(message);
        self
    }

    /// Finishes the MAC and returns the 20-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_SIZE] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `expected` against the computed tag in constant time.
    pub fn verify(self, expected: &[u8]) -> bool {
        verify_tag(&self.finalize(), expected)
    }
}

/// Constant-time comparison of a computed MAC tag against an expected one.
/// Length mismatches return `false` immediately (the length is public).
pub fn verify_tag(computed: &[u8], expected: &[u8]) -> bool {
    if computed.len() != expected.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in computed.iter().zip(expected.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc2202_test_case_1() {
        let tag = hmac_sha1(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_test_case_2() {
        let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_test_case_3() {
        let tag = hmac_sha1(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_test_case_6_long_key() {
        let tag = hmac_sha1(
            &[0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"registration-session-key";
        let message: Vec<u8> = (0u32..777).map(|i| i as u8).collect();
        let expected = hmac_sha1(key, &message);
        let mut mac = HmacSha1::new(key);
        for chunk in message.chunks(13) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), expected);
    }

    #[test]
    fn verify_accepts_correct_and_rejects_tampered() {
        let key = b"k";
        let msg = b"rights object body";
        let tag = hmac_sha1(key, msg);
        assert!(HmacSha1::new(key).chain(msg).verify(&tag));
        let mut bad = tag;
        bad[3] ^= 1;
        assert!(!HmacSha1::new(key).chain(msg).verify(&bad));
        assert!(!HmacSha1::new(key).chain(msg).verify(&tag[..10]));
    }

    #[test]
    fn different_keys_give_different_tags() {
        let msg = b"same message";
        assert_ne!(hmac_sha1(b"key-a", msg), hmac_sha1(b"key-b", msg));
    }
}
