//! HMAC with SHA-1 (RFC 2104), the MAC algorithm mandated by OMA DRM 2 for
//! Rights Object integrity protection.

use crate::sha1::{Sha1, BLOCK_SIZE, DIGEST_SIZE};
use std::cell::RefCell;

thread_local! {
    /// One-entry keyed-template cache for the one-shot [`hmac_sha1`] helper.
    ///
    /// Call sites that loop over records with the *same* key (KDF2 iterations,
    /// per-wrap-block MACs, RO verification sweeps) would otherwise re-derive
    /// the inner/outer pad states — two extra SHA-1 compressions plus the key
    /// normalization — on every record. Caching the keyed [`HmacSha1`]
    /// template and cloning it per message makes the repeated-key case pay
    /// key setup exactly once. The cache key comparison is a plain
    /// (length-then-bytes) equality check, not constant-time: whether two
    /// consecutive calls used the same key is already visible to a timing
    /// observer through the cache hit itself, and the key bytes never
    /// influence timing beyond that one bit.
    static KEYED_TEMPLATE: RefCell<Option<(Vec<u8>, HmacSha1)>> = const { RefCell::new(None) };
}

/// Computes `HMAC-SHA1(key, message)`.
///
/// Keys longer than the SHA-1 block size are hashed first, exactly as RFC
/// 2104 prescribes. Consecutive calls with the same key reuse a cached keyed
/// template (precomputed inner/outer pad states), so tight loops over
/// same-key records skip the per-call key schedule.
///
/// # Example
///
/// ```
/// use oma_crypto::hmac::hmac_sha1;
/// let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(tag[0], 0xef);
/// ```
pub fn hmac_sha1(key: &[u8], message: &[u8]) -> [u8; DIGEST_SIZE] {
    KEYED_TEMPLATE.with(|cell| {
        let mut slot = cell.borrow_mut();
        match slot.as_ref() {
            Some((cached_key, template)) if cached_key.as_slice() == key => template.mac(message),
            _ => {
                let template = HmacSha1::new(key);
                let tag = template.mac(message);
                *slot = Some((key.to_vec(), template));
                tag
            }
        }
    })
}

/// Incremental HMAC-SHA1 computation.
///
/// # Example
///
/// ```
/// use oma_crypto::hmac::{hmac_sha1, HmacSha1};
/// let mut mac = HmacSha1::new(b"key");
/// mac.update(b"part one ");
/// mac.update(b"part two");
/// assert_eq!(mac.finalize(), hmac_sha1(b"key", b"part one part two"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha1 {
    inner: Sha1,
    outer_key_pad: [u8; BLOCK_SIZE],
}

impl HmacSha1 {
    /// Creates an HMAC context keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut normalized_key = [0u8; BLOCK_SIZE];
        if key.len() > BLOCK_SIZE {
            let digest = crate::sha1::sha1(key);
            normalized_key[..DIGEST_SIZE].copy_from_slice(&digest);
        } else {
            normalized_key[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_SIZE];
        let mut opad = [0x5cu8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            ipad[i] ^= normalized_key[i];
            opad[i] ^= normalized_key[i];
        }
        let mut inner = Sha1::new();
        inner.update(&ipad);
        HmacSha1 {
            inner,
            outer_key_pad: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, message: &[u8]) {
        self.inner.update(message);
    }

    /// Builder-style [`HmacSha1::update`].
    pub fn chain(mut self, message: &[u8]) -> Self {
        self.update(message);
        self
    }

    /// Finishes the MAC and returns the 20-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_SIZE] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha1::new();
        outer.update(&self.outer_key_pad);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `expected` against the computed tag in constant time.
    pub fn verify(self, expected: &[u8]) -> bool {
        verify_tag(&self.finalize(), expected)
    }

    /// One-shot MAC of `message` that leaves the keyed template intact.
    ///
    /// A keyed `HmacSha1` doubles as a reusable template: the inner/outer pad
    /// states are derived once in [`HmacSha1::new`], and `mac` clones them per
    /// message. Loops over many records under one key should build the
    /// context once and call `mac` per record.
    pub fn mac(&self, message: &[u8]) -> [u8; DIGEST_SIZE] {
        self.clone().chain(message).finalize()
    }

    /// Like [`HmacSha1::verify`], but non-consuming: MACs `message` from the
    /// keyed template and compares against `expected` in constant time.
    pub fn verify_tag_for(&self, message: &[u8], expected: &[u8]) -> bool {
        verify_tag(&self.mac(message), expected)
    }
}

/// Constant-time comparison of a computed MAC tag against an expected one.
/// Length mismatches return `false` immediately (the length is public).
pub fn verify_tag(computed: &[u8], expected: &[u8]) -> bool {
    if computed.len() != expected.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in computed.iter().zip(expected.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc2202_test_case_1() {
        let tag = hmac_sha1(&[0x0b; 20], b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_test_case_2() {
        let tag = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_test_case_3() {
        let tag = hmac_sha1(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_test_case_6_long_key() {
        let tag = hmac_sha1(
            &[0xaa; 80],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(hex(&tag), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"registration-session-key";
        let message: Vec<u8> = (0u32..777).map(|i| i as u8).collect();
        let expected = hmac_sha1(key, &message);
        let mut mac = HmacSha1::new(key);
        for chunk in message.chunks(13) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), expected);
    }

    #[test]
    fn verify_accepts_correct_and_rejects_tampered() {
        let key = b"k";
        let msg = b"rights object body";
        let tag = hmac_sha1(key, msg);
        assert!(HmacSha1::new(key).chain(msg).verify(&tag));
        let mut bad = tag;
        bad[3] ^= 1;
        assert!(!HmacSha1::new(key).chain(msg).verify(&bad));
        assert!(!HmacSha1::new(key).chain(msg).verify(&tag[..10]));
    }

    #[test]
    fn different_keys_give_different_tags() {
        let msg = b"same message";
        assert_ne!(hmac_sha1(b"key-a", msg), hmac_sha1(b"key-b", msg));
    }

    #[test]
    fn keyed_template_mac_matches_oneshot() {
        let template = HmacSha1::new(b"record-mac-key");
        for i in 0u8..16 {
            let record = vec![i; 1 + i as usize * 7];
            assert_eq!(template.mac(&record), hmac_sha1(b"record-mac-key", &record));
            assert!(template.verify_tag_for(&record, &hmac_sha1(b"record-mac-key", &record)));
            assert!(!template.verify_tag_for(&record, &[0u8; DIGEST_SIZE]));
        }
    }

    #[test]
    fn oneshot_cache_survives_interleaved_keys() {
        // Alternate two keys so every call misses the one-entry template
        // cache, then repeat one key so every call hits it; both sequences
        // must agree with fresh contexts.
        let keys: [&[u8]; 2] = [b"alpha", b"beta"];
        for round in 0..3 {
            for (k, key) in keys.iter().enumerate() {
                let msg = [round as u8, k as u8, 0x5a];
                assert_eq!(
                    hmac_sha1(key, &msg),
                    HmacSha1::new(key).chain(&msg).finalize()
                );
            }
        }
        for i in 0u8..4 {
            assert_eq!(
                hmac_sha1(b"alpha", &[i]),
                HmacSha1::new(b"alpha").chain(&[i]).finalize()
            );
        }
    }

    #[test]
    fn long_keys_roundtrip_through_the_template_cache() {
        let long_key = [0x77u8; 100];
        let msg = b"dcf segment";
        let expected = HmacSha1::new(&long_key).chain(msg).finalize();
        assert_eq!(hmac_sha1(&long_key, msg), expected);
        assert_eq!(hmac_sha1(&long_key, msg), expected);
    }
}
