//! The KDF2 key derivation function (IEEE 1363a / ANSI X9.44), as referenced
//! by the OMA DRM 2 specification for deriving the key-encryption key `KEK`
//! from the RSA-encrypted secret `Z` during Rights Object installation
//! (Figure 3 of the paper).

use crate::backend::{CryptoBackend, Unmetered};
use crate::sha1::DIGEST_SIZE;

/// Derives `output_len` bytes from the shared secret `z` and optional
/// `other_info` using KDF2 with SHA-1.
///
/// KDF2 concatenates `Hash(z ‖ counter ‖ other_info)` for counter values
/// 1, 2, … (32-bit big-endian) and truncates to the requested length.
///
/// # Example
///
/// ```
/// use oma_crypto::kdf::kdf2;
/// let kek = kdf2(b"shared-secret-z", b"", 16);
/// assert_eq!(kek.len(), 16);
/// ```
pub fn kdf2(z: &[u8], other_info: &[u8], output_len: usize) -> Vec<u8> {
    kdf2_with(&Unmetered, z, other_info, output_len)
}

/// [`kdf2`] routed through a [`CryptoBackend`]: each counter iteration is one
/// backend SHA-1 invocation over `z ‖ counter ‖ other_info`.
pub fn kdf2_with(
    backend: &dyn CryptoBackend,
    z: &[u8],
    other_info: &[u8],
    output_len: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(output_len.next_multiple_of(DIGEST_SIZE));
    let mut input = Vec::with_capacity(z.len() + 4 + other_info.len());
    let mut counter: u32 = 1;
    while out.len() < output_len {
        input.clear();
        input.extend_from_slice(z);
        input.extend_from_slice(&counter.to_be_bytes());
        input.extend_from_slice(other_info);
        out.extend_from_slice(&backend.sha1(&input));
        counter += 1;
    }
    out.truncate(output_len);
    out
}

/// Derives the 128-bit OMA DRM key-encryption key from `z`.
///
/// This is the `KDF` box of Figure 3: `KEK = KDF2(Z)[0..16]`.
pub fn derive_kek(z: &[u8]) -> [u8; 16] {
    derive_kek_with(&Unmetered, z)
}

/// [`derive_kek`] routed through a [`CryptoBackend`].
pub fn derive_kek_with(backend: &dyn CryptoBackend, z: &[u8]) -> [u8; 16] {
    let bytes = kdf2_with(backend, z, b"", 16);
    let mut out = [0u8; 16];
    out.copy_from_slice(&bytes);
    out
}

/// Number of SHA-1 compression passes (counted in 128-bit input blocks, the
/// unit of the paper's cost table) needed to derive `output_len` bytes from a
/// `z_len`-byte secret with empty `other_info`.
pub fn hash_blocks(z_len: usize, output_len: usize) -> u64 {
    op_counts(z_len, 0, output_len).1
}

/// SHA-1 `(invocations, 128-bit input blocks)` performed by [`kdf2`] for the
/// given input sizes — the exact counts a [`CryptoBackend`] charges when the
/// derivation is routed through it, so trace recording and cycle metering
/// stay two views of one accounting.
pub fn op_counts(z_len: usize, other_info_len: usize, output_len: usize) -> (u64, u64) {
    let iterations = output_len.div_ceil(DIGEST_SIZE) as u64;
    let blocks_per_iteration = crate::backend::data_blocks(z_len + 4 + other_info_len);
    (iterations, iterations * blocks_per_iteration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::sha1;

    #[test]
    fn single_iteration_matches_hash() {
        // For output <= 20 bytes, KDF2 is SHA1(z || 00000001 || info) truncated.
        let z = b"0123456789abcdef";
        let mut reference_input = z.to_vec();
        reference_input.extend_from_slice(&1u32.to_be_bytes());
        let reference = sha1(&reference_input);
        assert_eq!(kdf2(z, b"", 20), reference.to_vec());
        assert_eq!(kdf2(z, b"", 16), reference[..16].to_vec());
    }

    #[test]
    fn counter_increments_across_iterations() {
        let z = b"secret";
        let out = kdf2(z, b"", 45);
        assert_eq!(out.len(), 45);
        // Second block must equal SHA1(z || 00000002)
        let mut second = z.to_vec();
        second.extend_from_slice(&2u32.to_be_bytes());
        assert_eq!(out[20..40], sha1(&second));
    }

    #[test]
    fn other_info_changes_output() {
        let z = b"secret";
        assert_ne!(kdf2(z, b"a", 16), kdf2(z, b"b", 16));
    }

    #[test]
    fn derive_kek_is_16_bytes_and_deterministic() {
        let a = derive_kek(b"zz");
        let b = derive_kek(b"zz");
        assert_eq!(a, b);
        assert_ne!(a, derive_kek(b"zy"));
    }

    #[test]
    fn zero_length_output() {
        assert!(kdf2(b"z", b"", 0).is_empty());
    }

    #[test]
    fn hash_block_accounting() {
        // 128-byte Z (1024-bit RSA plaintext), 16-byte output: one iteration
        // over 132 bytes = 9 blocks of 16 bytes.
        assert_eq!(hash_blocks(128, 16), 9);
        // Two iterations double it.
        assert_eq!(hash_blocks(128, 32), 18);
    }
}
