//! The instrumented crypto provider.
//!
//! The paper built a Java functional model of OMA DRM 2 and used it to
//! extract, for each protocol phase, the list of cryptographic operations and
//! the data sizes they process. [`CryptoEngine`] plays that role here: every
//! DRM-layer component (`oma-drm`) performs its cryptography through an
//! engine, which executes the real algorithm *and* records an
//! [`OpTrace`] entry of the form `(algorithm, invocations, 128-bit blocks)`.
//! The performance model in `oma-perf` then prices a trace under the paper's
//! Table 1 cycle costs for any architecture variant.
//!
//! Block accounting follows the units of Table 1:
//!
//! * AES, SHA-1 and HMAC SHA-1 are charged per 128 bits of processed data,
//!   plus a per-invocation constant (key schedule for AES, fixed-length
//!   hashing for HMAC),
//! * RSA operations are charged per 1024-bit exponentiation,
//! * the EMSA-PSS encoding is approximated by a single hash over the signed
//!   message (the same "close approximation" the paper makes),
//! * AES key wrap is charged for its real 6·n block-cipher invocations.

use crate::backend::{data_blocks, CryptoBackend, SoftwareBackend};
use crate::kem::{self, WrappedKeys, SYMMETRIC_KEY_LEN};
use crate::pss::{self, PssSignature};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::{cbc, hmac, kdf, keywrap, sha1, CryptoError};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cryptographic algorithms whose cost the paper models (Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// AES-128 encryption (CBC content encryption, key wrapping).
    AesEncrypt,
    /// AES-128 decryption (CBC content decryption, key unwrapping).
    AesDecrypt,
    /// SHA-1 hashing (DCF integrity, KDF2, signature message hashing).
    Sha1,
    /// HMAC SHA-1 (Rights Object integrity).
    HmacSha1,
    /// RSA-1024 public-key operation (RSAEP / RSAVP1).
    RsaPublic,
    /// RSA-1024 private-key operation (RSADP / RSASP1).
    RsaPrivate,
}

impl Algorithm {
    /// All algorithms, in Table 1 order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::AesEncrypt,
        Algorithm::AesDecrypt,
        Algorithm::Sha1,
        Algorithm::HmacSha1,
        Algorithm::RsaPublic,
        Algorithm::RsaPrivate,
    ];

    /// The paper's Table 1 row label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::AesEncrypt => "AES Encryption",
            Algorithm::AesDecrypt => "AES Decryption",
            Algorithm::Sha1 => "SHA-1",
            Algorithm::HmacSha1 => "HMAC SHA-1",
            Algorithm::RsaPublic => "RSA 1024 Public Key Op",
            Algorithm::RsaPrivate => "RSA 1024 Private Key Op",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Algorithm::AesEncrypt => 0,
            Algorithm::AesDecrypt => 1,
            Algorithm::Sha1 => 2,
            Algorithm::HmacSha1 => 3,
            Algorithm::RsaPublic => 4,
            Algorithm::RsaPrivate => 5,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Operation counts for one algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct OpCount {
    /// Number of distinct invocations (carries the per-invocation offset cost).
    pub invocations: u64,
    /// Number of data blocks processed (128-bit blocks for symmetric/hash
    /// algorithms, 1024-bit exponentiations for RSA).
    pub blocks: u64,
}

impl OpCount {
    /// Adds another count into this one.
    pub fn merge(&mut self, other: OpCount) {
        self.invocations += other.invocations;
        self.blocks += other.blocks;
    }

    /// True when nothing has been recorded.
    pub fn is_zero(&self) -> bool {
        self.invocations == 0 && self.blocks == 0
    }
}

/// A record of every cryptographic operation performed through a
/// [`CryptoEngine`].
///
/// Traces are additive: phase traces can be merged into a use-case trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpTrace {
    counts: [OpCount; 6],
}

impl OpTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `invocations` invocations processing `blocks` blocks of
    /// `algorithm`.
    pub fn record(&mut self, algorithm: Algorithm, invocations: u64, blocks: u64) {
        let entry = &mut self.counts[algorithm.index()];
        entry.invocations += invocations;
        entry.blocks += blocks;
    }

    /// The accumulated count for `algorithm`.
    pub fn count(&self, algorithm: Algorithm) -> OpCount {
        self.counts[algorithm.index()]
    }

    /// Merges `other` into this trace.
    pub fn merge(&mut self, other: &OpTrace) {
        for alg in Algorithm::ALL {
            self.counts[alg.index()].merge(other.count(alg));
        }
    }

    /// Returns the sum of two traces.
    pub fn merged(&self, other: &OpTrace) -> OpTrace {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Scales every count by `factor` (e.g. "the user listens to the track
    /// five times").
    pub fn scaled(&self, factor: u64) -> OpTrace {
        let mut out = self.clone();
        for count in &mut out.counts {
            count.invocations *= factor;
            count.blocks *= factor;
        }
        out
    }

    /// True when no operation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(OpCount::is_zero)
    }

    /// Total number of invocations across all algorithms.
    pub fn total_invocations(&self) -> u64 {
        self.counts.iter().map(|c| c.invocations).sum()
    }

    /// Iterates over `(algorithm, count)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (Algorithm, OpCount)> + '_ {
        Algorithm::ALL.into_iter().map(move |a| (a, self.count(a)))
    }
}

/// Draws a fresh engine seed from the operating-system entropy source.
fn rand_seed() -> u64 {
    StdRng::from_entropy().next_u64()
}

/// Lock-free operation recorder: one shard of two atomic counters per
/// algorithm, so the hot path never takes a lock and concurrent recorders of
/// *different* algorithms never contend on the same cache line's counter.
#[derive(Debug, Default)]
struct ShardedTrace {
    shards: [TraceShard; 6],
}

#[derive(Debug, Default)]
struct TraceShard {
    invocations: AtomicU64,
    blocks: AtomicU64,
}

impl ShardedTrace {
    fn record(&self, algorithm: Algorithm, invocations: u64, blocks: u64) {
        let shard = &self.shards[algorithm.index()];
        shard.invocations.fetch_add(invocations, Ordering::Relaxed);
        shard.blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OpTrace {
        let mut trace = OpTrace::new();
        for alg in Algorithm::ALL {
            let shard = &self.shards[alg.index()];
            trace.record(
                alg,
                shard.invocations.load(Ordering::Relaxed),
                shard.blocks.load(Ordering::Relaxed),
            );
        }
        trace
    }

    /// Returns the recorded counts and resets every shard. The reset is
    /// per-counter atomic, not a cross-shard snapshot; phase boundaries must
    /// be quiesced by the caller (the DRM Agent drives its engine from one
    /// thread between phase snapshots).
    fn take(&self) -> OpTrace {
        let mut trace = OpTrace::new();
        for alg in Algorithm::ALL {
            let shard = &self.shards[alg.index()];
            trace.record(
                alg,
                shard.invocations.swap(0, Ordering::Relaxed),
                shard.blocks.swap(0, Ordering::Relaxed),
            );
        }
        trace
    }
}

/// An instrumented cryptographic provider.
///
/// Every method performs the genuine computation by delegating to a
/// pluggable [`CryptoBackend`] (software by default, simulated hardware
/// macros via [`CryptoEngine::with_backend`]) and records its cost-relevant
/// footprint into a lock-free sharded [`OpTrace`] recorder. The engine is
/// `Send + Sync`; recording uses per-algorithm atomic counters.
///
/// # Example
///
/// ```
/// use oma_crypto::{Algorithm, CryptoEngine};
///
/// let engine = CryptoEngine::with_seed(42);
/// let digest = engine.sha1(&vec![0u8; 160]);
/// assert_eq!(digest.len(), 20);
/// let trace = engine.take_trace();
/// assert_eq!(trace.count(Algorithm::Sha1).blocks, 10);
/// ```
///
/// Running the same operations on the simulated-hardware backend produces
/// byte-identical results while charging Table 1 hardware cycles:
///
/// ```
/// use oma_crypto::backend::{CryptoBackend, HwMacroBackend};
/// use oma_crypto::CryptoEngine;
/// use std::sync::Arc;
///
/// let engine = CryptoEngine::with_backend(Arc::new(HwMacroBackend::full()), 42);
/// engine.sha1(&vec![0u8; 160]);
/// assert_eq!(engine.charged_cycles(), 10 * 20); // 10 blocks x 20 cycles
/// ```
#[derive(Debug)]
pub struct CryptoEngine {
    backend: Arc<dyn CryptoBackend>,
    trace: ShardedTrace,
    rng: Mutex<StdRng>,
}

impl Default for CryptoEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CryptoEngine {
    /// Creates a software-backed engine seeded from the operating-system
    /// entropy source.
    pub fn new() -> Self {
        Self::with_backend(Arc::new(SoftwareBackend::new()), rand_seed())
    }

    /// Creates a software-backed engine with a deterministic random stream,
    /// for reproducible tests and experiments.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_backend(Arc::new(SoftwareBackend::new()), seed)
    }

    /// Creates an engine executing on `backend` with a deterministic random
    /// stream. This is how the measured runner in `oma-perf` instantiates
    /// one engine per architecture variant.
    pub fn with_backend(backend: Arc<dyn CryptoBackend>, seed: u64) -> Self {
        CryptoEngine {
            backend,
            trace: ShardedTrace::default(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// The backend this engine executes on.
    pub fn backend(&self) -> &Arc<dyn CryptoBackend> {
        &self.backend
    }

    /// Total cycles the backend has charged for work done through this
    /// engine (and any other engine sharing the backend).
    pub fn charged_cycles(&self) -> u64 {
        self.backend.charged_cycles()
    }

    /// Returns the backend's charged cycles and resets its meter.
    pub fn take_charged_cycles(&self) -> u64 {
        self.backend.take_charged_cycles()
    }

    // ----- trace management -------------------------------------------------

    /// Snapshot of the operations recorded so far.
    pub fn trace(&self) -> OpTrace {
        self.trace.snapshot()
    }

    /// Returns the recorded operations and resets the trace to empty.
    pub fn take_trace(&self) -> OpTrace {
        self.trace.take()
    }

    /// Discards all recorded operations.
    pub fn reset_trace(&self) {
        self.take_trace();
    }

    fn record(&self, algorithm: Algorithm, invocations: u64, blocks: u64) {
        self.trace.record(algorithm, invocations, blocks);
    }

    // ----- randomness --------------------------------------------------------

    /// Fills `buf` with random bytes.
    pub fn fill_random(&self, buf: &mut [u8]) {
        self.rng.lock().expect("rng lock").fill_bytes(buf);
    }

    /// Draws a fresh 128-bit symmetric key.
    pub fn random_key(&self) -> [u8; SYMMETRIC_KEY_LEN] {
        let mut key = [0u8; SYMMETRIC_KEY_LEN];
        self.fill_random(&mut key);
        key
    }

    /// Draws a random nonce of `len` bytes (ROAP nonces are 14 bytes).
    pub fn random_nonce(&self, len: usize) -> Vec<u8> {
        let mut nonce = vec![0u8; len];
        self.fill_random(&mut nonce);
        nonce
    }

    /// Checkpoints the engine's deterministic random stream. Restoring the
    /// returned state with [`CryptoEngine::restore_rng_state`] makes the
    /// engine continue the stream exactly where the checkpoint was taken —
    /// the primitive a write-ahead log needs so that nonces, salts and key
    /// material drawn *after* crash recovery are byte-identical to an
    /// uninterrupted run.
    pub fn rng_state(&self) -> [u8; 32] {
        self.rng.lock().expect("rng lock").state_bytes()
    }

    /// Restores a checkpoint taken with [`CryptoEngine::rng_state`],
    /// replacing the engine's current random stream.
    pub fn restore_rng_state(&self, state: [u8; 32]) {
        *self.rng.lock().expect("rng lock") = StdRng::from_state_bytes(state);
    }

    // ----- hashing and MAC ---------------------------------------------------

    /// SHA-1 of `data`, recorded per 128-bit block.
    pub fn sha1(&self, data: &[u8]) -> [u8; sha1::DIGEST_SIZE] {
        self.record(Algorithm::Sha1, 1, data_blocks(data.len()));
        self.backend.sha1(data)
    }

    /// HMAC SHA-1 of `data` under `key`.
    pub fn hmac_sha1(&self, key: &[u8], data: &[u8]) -> [u8; sha1::DIGEST_SIZE] {
        self.record(Algorithm::HmacSha1, 1, data_blocks(data.len()));
        self.backend.hmac_sha1(key, data)
    }

    /// Verifies an HMAC SHA-1 tag (constant-time comparison).
    pub fn hmac_sha1_verify(&self, key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        self.record(Algorithm::HmacSha1, 1, data_blocks(data.len()));
        let computed = self.backend.hmac_sha1(key, data);
        hmac::verify_tag(&computed, tag)
    }

    // ----- symmetric encryption ----------------------------------------------

    /// AES-128-CBC encryption with PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// See [`cbc::encrypt`].
    pub fn aes_cbc_encrypt(
        &self,
        key: &[u8],
        iv: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        self.record(
            Algorithm::AesEncrypt,
            1,
            cbc::encrypted_blocks(plaintext.len()),
        );
        cbc::encrypt_with(self.backend.as_ref(), key, iv, plaintext)
    }

    /// AES-128-CBC decryption.
    ///
    /// # Errors
    ///
    /// See [`cbc::decrypt`].
    pub fn aes_cbc_decrypt(
        &self,
        key: &[u8],
        iv: &[u8],
        ciphertext: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        self.record(Algorithm::AesDecrypt, 1, (ciphertext.len() / 16) as u64);
        cbc::decrypt_with(self.backend.as_ref(), key, iv, ciphertext)
    }

    /// RFC 3394 AES key wrap (records the real 6·n block operations).
    ///
    /// # Errors
    ///
    /// See [`keywrap::wrap`].
    pub fn aes_wrap(&self, kek: &[u8], key_data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.record(
            Algorithm::AesEncrypt,
            1,
            keywrap::block_operations(key_data.len()),
        );
        keywrap::wrap_with(self.backend.as_ref(), kek, key_data)
    }

    /// RFC 3394 AES key unwrap.
    ///
    /// # Errors
    ///
    /// See [`keywrap::unwrap`].
    pub fn aes_unwrap(&self, kek: &[u8], wrapped: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let data_len = wrapped.len().saturating_sub(8);
        self.record(
            Algorithm::AesDecrypt,
            1,
            keywrap::block_operations(data_len),
        );
        keywrap::unwrap_with(self.backend.as_ref(), kek, wrapped)
    }

    // ----- KDF ---------------------------------------------------------------

    /// KDF2 key derivation, recorded as the SHA-1 work it performs (one
    /// invocation per counter iteration, blocks per actual hashed bytes —
    /// the same accounting the backend charges).
    pub fn kdf2(&self, z: &[u8], other_info: &[u8], output_len: usize) -> Vec<u8> {
        let (invocations, blocks) = kdf::op_counts(z.len(), other_info.len(), output_len);
        self.record(Algorithm::Sha1, invocations, blocks);
        kdf::kdf2_with(self.backend.as_ref(), z, other_info, output_len)
    }

    // ----- RSA ---------------------------------------------------------------

    /// Raw RSA public-key encryption of an octet string (RSAEP).
    ///
    /// # Errors
    ///
    /// See [`RsaPublicKey::encrypt_os`].
    pub fn rsa_encrypt(&self, key: &RsaPublicKey, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.record(Algorithm::RsaPublic, 1, 1);
        key.encrypt_os_with(self.backend.as_ref(), data)
    }

    /// Raw RSA private-key decryption of an octet string (RSADP).
    ///
    /// # Errors
    ///
    /// See [`RsaPrivateKey::decrypt_os`].
    pub fn rsa_decrypt(&self, key: &RsaPrivateKey, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.record(Algorithm::RsaPrivate, 1, 1);
        key.decrypt_os_with(self.backend.as_ref(), data)
    }

    /// RSA-PSS signature over `message`.
    ///
    /// Recorded as one RSA private-key operation plus one SHA-1 pass over the
    /// message — the paper's approximation of EMSA-PSS.
    ///
    /// # Errors
    ///
    /// See [`pss::sign`].
    pub fn pss_sign(
        &self,
        key: &RsaPrivateKey,
        message: &[u8],
    ) -> Result<PssSignature, CryptoError> {
        self.record(Algorithm::RsaPrivate, 1, 1);
        self.record(Algorithm::Sha1, 1, data_blocks(message.len()));
        let mut rng = self.rng.lock().expect("rng lock");
        pss::sign_with(self.backend.as_ref(), key, message, &mut *rng)
    }

    /// RSA-PSS signature verification.
    ///
    /// Recorded as one RSA public-key operation plus one SHA-1 pass over the
    /// message.
    pub fn pss_verify(&self, key: &RsaPublicKey, message: &[u8], signature: &PssSignature) -> bool {
        self.record(Algorithm::RsaPublic, 1, 1);
        self.record(Algorithm::Sha1, 1, data_blocks(message.len()));
        pss::verify_with(self.backend.as_ref(), key, message, signature)
    }

    // ----- OMA KEM -----------------------------------------------------------

    /// Wraps `K_MAC ‖ K_REK` for `recipient` (Rights Issuer side).
    ///
    /// Records one RSA public-key operation, the KDF2 hashing and the AES
    /// wrap operations.
    ///
    /// # Errors
    ///
    /// See [`kem::wrap_keys`].
    pub fn kem_wrap(
        &self,
        recipient: &RsaPublicKey,
        kmac: &[u8; SYMMETRIC_KEY_LEN],
        krek: &[u8; SYMMETRIC_KEY_LEN],
    ) -> Result<WrappedKeys, CryptoError> {
        self.record(Algorithm::RsaPublic, 1, 1);
        self.record(
            Algorithm::Sha1,
            1,
            kdf::hash_blocks(recipient.modulus_bytes(), SYMMETRIC_KEY_LEN),
        );
        self.record(
            Algorithm::AesEncrypt,
            1,
            keywrap::block_operations(2 * SYMMETRIC_KEY_LEN),
        );
        let mut rng = self.rng.lock().expect("rng lock");
        kem::wrap_keys_with(self.backend.as_ref(), recipient, kmac, krek, &mut *rng)
    }

    /// Unwraps `C1 ‖ C2` with the device private key (DRM Agent side,
    /// Figure 3 of the paper).
    ///
    /// Records one RSA private-key operation, the KDF2 hashing and the AES
    /// unwrap operations.
    ///
    /// # Errors
    ///
    /// See [`kem::unwrap_keys`].
    pub fn kem_unwrap(
        &self,
        recipient: &RsaPrivateKey,
        wrapped: &WrappedKeys,
    ) -> Result<([u8; SYMMETRIC_KEY_LEN], [u8; SYMMETRIC_KEY_LEN]), CryptoError> {
        self.record(Algorithm::RsaPrivate, 1, 1);
        self.record(
            Algorithm::Sha1,
            1,
            kdf::hash_blocks(recipient.public().modulus_bytes(), SYMMETRIC_KEY_LEN),
        );
        self.record(
            Algorithm::AesDecrypt,
            1,
            keywrap::block_operations(2 * SYMMETRIC_KEY_LEN),
        );
        kem::unwrap_keys_with(self.backend.as_ref(), recipient, wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;

    #[test]
    fn data_block_accounting() {
        assert_eq!(data_blocks(0), 1);
        assert_eq!(data_blocks(1), 1);
        assert_eq!(data_blocks(16), 1);
        assert_eq!(data_blocks(17), 2);
        assert_eq!(data_blocks(3_500_000), 218_750);
    }

    #[test]
    fn trace_records_and_merges() {
        let mut a = OpTrace::new();
        assert!(a.is_empty());
        a.record(Algorithm::Sha1, 1, 10);
        a.record(Algorithm::Sha1, 1, 5);
        assert_eq!(
            a.count(Algorithm::Sha1),
            OpCount {
                invocations: 2,
                blocks: 15
            }
        );
        let mut b = OpTrace::new();
        b.record(Algorithm::RsaPrivate, 3, 3);
        a.merge(&b);
        assert_eq!(a.count(Algorithm::RsaPrivate).invocations, 3);
        assert_eq!(a.total_invocations(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn trace_scaling() {
        let mut t = OpTrace::new();
        t.record(Algorithm::AesDecrypt, 1, 100);
        let five = t.scaled(5);
        assert_eq!(
            five.count(Algorithm::AesDecrypt),
            OpCount {
                invocations: 5,
                blocks: 500
            }
        );
        assert_eq!(t.scaled(0).total_invocations(), 0);
    }

    #[test]
    fn trace_iteration_order_matches_table1() {
        let t = OpTrace::new();
        let algorithms: Vec<Algorithm> = t.iter().map(|(a, _)| a).collect();
        assert_eq!(algorithms, Algorithm::ALL.to_vec());
    }

    #[test]
    fn engine_sha1_matches_primitive_and_records() {
        let engine = CryptoEngine::with_seed(1);
        let data = vec![0x61u8; 100];
        assert_eq!(engine.sha1(&data), sha1::sha1(&data));
        let trace = engine.take_trace();
        assert_eq!(
            trace.count(Algorithm::Sha1),
            OpCount {
                invocations: 1,
                blocks: 7
            }
        );
        assert!(engine.trace().is_empty(), "take_trace resets");
    }

    #[test]
    fn engine_cbc_roundtrip_records_both_directions() {
        let engine = CryptoEngine::with_seed(2);
        let key = engine.random_key();
        let iv = engine.random_key();
        let plain = vec![7u8; 1000];
        let ct = engine.aes_cbc_encrypt(&key, &iv, &plain).unwrap();
        let pt = engine.aes_cbc_decrypt(&key, &iv, &ct).unwrap();
        assert_eq!(pt, plain);
        let trace = engine.trace();
        assert_eq!(trace.count(Algorithm::AesEncrypt).blocks, 63);
        assert_eq!(trace.count(Algorithm::AesDecrypt).blocks, 63);
    }

    #[test]
    fn engine_keywrap_records_six_ops_per_block() {
        let engine = CryptoEngine::with_seed(3);
        let kek = engine.random_key();
        let wrapped = engine.aes_wrap(&kek, &[1u8; 32]).unwrap();
        let unwrapped = engine.aes_unwrap(&kek, &wrapped).unwrap();
        assert_eq!(unwrapped, vec![1u8; 32]);
        let trace = engine.trace();
        assert_eq!(trace.count(Algorithm::AesEncrypt).blocks, 24);
        assert_eq!(trace.count(Algorithm::AesDecrypt).blocks, 24);
    }

    #[test]
    fn engine_pss_records_private_plus_hash() {
        let pair = RsaKeyPair::generate(512, &mut rand::rngs::StdRng::seed_from_u64(4));
        let engine = CryptoEngine::with_seed(4);
        let msg = vec![9u8; 320];
        let sig = engine.pss_sign(pair.private(), &msg).unwrap();
        assert!(engine.pss_verify(pair.public(), &msg, &sig));
        let trace = engine.trace();
        assert_eq!(trace.count(Algorithm::RsaPrivate).invocations, 1);
        assert_eq!(trace.count(Algorithm::RsaPublic).invocations, 1);
        assert_eq!(trace.count(Algorithm::Sha1).blocks, 40);
    }

    #[test]
    fn engine_kem_roundtrip_and_trace() {
        let pair = RsaKeyPair::generate(512, &mut rand::rngs::StdRng::seed_from_u64(5));
        let engine = CryptoEngine::with_seed(5);
        let kmac = engine.random_key();
        let krek = engine.random_key();
        let wrapped = engine.kem_wrap(pair.public(), &kmac, &krek).unwrap();
        let (m, r) = engine.kem_unwrap(pair.private(), &wrapped).unwrap();
        assert_eq!((m, r), (kmac, krek));
        let trace = engine.trace();
        assert_eq!(trace.count(Algorithm::RsaPublic).invocations, 1);
        assert_eq!(trace.count(Algorithm::RsaPrivate).invocations, 1);
        assert!(trace.count(Algorithm::Sha1).blocks > 0);
    }

    #[test]
    fn engine_hmac_verify_detects_tampering() {
        let engine = CryptoEngine::with_seed(6);
        let key = engine.random_key();
        let tag = engine.hmac_sha1(&key, b"rights object");
        assert!(engine.hmac_sha1_verify(&key, b"rights object", &tag));
        assert!(!engine.hmac_sha1_verify(&key, b"rights 0bject", &tag));
        assert_eq!(engine.trace().count(Algorithm::HmacSha1).invocations, 3);
    }

    #[test]
    fn seeded_engines_are_deterministic() {
        let a = CryptoEngine::with_seed(77).random_key();
        let b = CryptoEngine::with_seed(77).random_key();
        assert_eq!(a, b);
        assert_ne!(a, CryptoEngine::with_seed(78).random_key());
        assert_eq!(CryptoEngine::with_seed(1).random_nonce(14).len(), 14);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoEngine>();
    }

    #[test]
    fn kdf2_trace_matches_backend_charge_even_with_other_info() {
        // Regression: multi-iteration KDF2 with non-empty other_info must
        // keep the recorded trace and the backend's cycle meter in exact
        // agreement (the trace-vs-meter invariant).
        use crate::backend::CostProfile;
        let engine = CryptoEngine::with_seed(9);
        engine.kdf2(&[0u8; 16], &[1u8; 32], 40); // 2 iterations over 52 bytes
        let trace = engine.take_trace();
        let count = trace.count(Algorithm::Sha1);
        assert_eq!(count.invocations, 2);
        assert_eq!(count.blocks, 8); // 2 x ceil(52 / 16)
        let cost = CostProfile::paper_software().cost(Algorithm::Sha1);
        assert_eq!(engine.charged_cycles(), cost.cycles(count));
    }

    #[test]
    fn algorithm_labels_match_table1() {
        assert_eq!(Algorithm::RsaPrivate.label(), "RSA 1024 Private Key Op");
        assert_eq!(Algorithm::Sha1.to_string(), "SHA-1");
        assert_eq!(Algorithm::ALL.len(), 6);
    }
}
