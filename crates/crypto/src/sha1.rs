//! The SHA-1 hash function (FIPS 180-1).
//!
//! OMA DRM 2 mandates SHA-1 as the hash for DCF integrity checks, as the
//! core of HMAC-SHA-1, inside KDF2 and inside the EMSA-PSS signature
//! encoding. Both a one-shot [`sha1`] helper and an incremental
//! [`Sha1`] hasher are provided; the incremental form is used when hashing
//! multi-megabyte DCF payloads in streaming fashion.

/// Digest size of SHA-1 in bytes.
pub const DIGEST_SIZE: usize = 20;

/// Internal block size of SHA-1 in bytes.
pub const BLOCK_SIZE: usize = 64;

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use oma_crypto::sha1::{sha1, Sha1};
///
/// let mut hasher = Sha1::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), sha1(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_SIZE],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; BLOCK_SIZE],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buffer_len > 0 {
            let take = (BLOCK_SIZE - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            } else {
                // Buffer still partially filled and all input consumed.
                return;
            }
        }
        let mut chunks = data.chunks_exact(BLOCK_SIZE);
        for chunk in &mut chunks {
            // `chunk` borrows the caller's input, not `self.buffer`, so the
            // compression can run directly over the slice without staging a copy.
            let block: &[u8; BLOCK_SIZE] =
                chunk.try_into().expect("chunks_exact yields full blocks");
            self.compress(block);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zeros until 56 mod 64, then the 64-bit length.
        self.update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update` but without counting toward the message length
    /// (used only for the padding bytes).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_SIZE]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
///
/// ```
/// use oma_crypto::sha1::sha1;
/// let d = sha1(b"abc");
/// assert_eq!(hex(&d), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
pub fn sha1(data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut hasher = Sha1::new();
    hasher.update(data);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn fips_180_1_vectors() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_and_fox() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut hasher = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            hasher.update(&chunk);
        }
        assert_eq!(
            hex(&hasher.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7 + 3) as u8).collect();
        let expected = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut hasher = Sha1::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), expected, "split={split}");
        }
    }

    #[test]
    fn exact_block_boundary_lengths() {
        for len in [55usize, 56, 63, 64, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one = sha1(&data);
            let mut inc = Sha1::new();
            for byte in &data {
                inc.update(std::slice::from_ref(byte));
            }
            assert_eq!(inc.finalize(), one, "len={len}");
        }
    }

    #[test]
    fn default_equals_new() {
        let a = Sha1::default().finalize();
        let b = Sha1::new().finalize();
        assert_eq!(a, b);
    }
}
