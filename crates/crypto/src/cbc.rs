//! AES-128 CBC mode with PKCS#7 padding.
//!
//! OMA DRM 2 mandates 128-bit AES in CBC mode for content encryption: the
//! Content Issuer encrypts the media payload of a DCF under `K_CEK`, and the
//! DRM Agent decrypts it on every playback.

use crate::aes::BLOCK_SIZE;
use crate::backend::{AesDirection, CryptoBackend, Unmetered};
use crate::CryptoError;

/// Encrypts `plaintext` with AES-128-CBC under `key` and `iv`, appending
/// PKCS#7 padding.
///
/// The returned ciphertext length is `plaintext.len()` rounded up to the next
/// multiple of 16 (a full padding block is added when the input is already
/// block-aligned).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKeyLength`] if `key` is not 16 bytes and
/// [`CryptoError::InvalidInputLength`] if `iv` is not 16 bytes.
///
/// # Example
///
/// ```
/// use oma_crypto::cbc;
/// # fn main() -> Result<(), oma_crypto::CryptoError> {
/// let key = [7u8; 16];
/// let iv = [9u8; 16];
/// let ct = cbc::encrypt(&key, &iv, b"protected content")?;
/// assert_eq!(cbc::decrypt(&key, &iv, &ct)?, b"protected content");
/// # Ok(()) }
/// ```
pub fn encrypt(key: &[u8], iv: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    encrypt_with(&Unmetered, key, iv, plaintext)
}

/// [`encrypt`] routed through a [`CryptoBackend`]: the key schedule and every
/// block operation run (and are charged) on the backend.
///
/// # Errors
///
/// Same as [`encrypt`].
pub fn encrypt_with(
    backend: &dyn CryptoBackend,
    key: &[u8],
    iv: &[u8],
    plaintext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let cipher = backend.aes_schedule(key, AesDirection::Encrypt)?;
    let iv = check_iv(iv)?;
    let padded = pad(plaintext);
    let mut out = Vec::with_capacity(padded.len());
    let mut previous = iv;
    for chunk in padded.chunks_exact(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            block[i] = chunk[i] ^ previous[i];
        }
        let encrypted = backend.aes_encrypt_block(&cipher, &block);
        out.extend_from_slice(&encrypted);
        previous = encrypted;
    }
    Ok(out)
}

/// Decrypts AES-128-CBC ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKeyLength`] for a bad key,
/// [`CryptoError::InvalidInputLength`] if the ciphertext is empty or not a
/// multiple of 16 bytes, and [`CryptoError::InvalidPadding`] if the padding is
/// malformed (which is the symptom of decrypting with the wrong key).
pub fn decrypt(key: &[u8], iv: &[u8], ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    decrypt_with(&Unmetered, key, iv, ciphertext)
}

/// [`decrypt`] routed through a [`CryptoBackend`].
///
/// # Errors
///
/// Same as [`decrypt`].
pub fn decrypt_with(
    backend: &dyn CryptoBackend,
    key: &[u8],
    iv: &[u8],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let cipher = backend.aes_schedule(key, AesDirection::Decrypt)?;
    let iv = check_iv(iv)?;
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CryptoError::InvalidInputLength {
            expected: "non-empty multiple of 16 bytes",
            actual: ciphertext.len(),
        });
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut previous = iv;
    for chunk in ciphertext.chunks_exact(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        let decrypted = backend.aes_decrypt_block(&cipher, &block);
        for i in 0..BLOCK_SIZE {
            out.push(decrypted[i] ^ previous[i]);
        }
        previous = block;
    }
    unpad(&mut out)?;
    Ok(out)
}

/// Number of 128-bit AES block operations needed to CBC-encrypt `len` bytes
/// of plaintext (including the padding block).
pub fn encrypted_blocks(len: usize) -> u64 {
    (len / BLOCK_SIZE + 1) as u64
}

fn check_iv(iv: &[u8]) -> Result<[u8; BLOCK_SIZE], CryptoError> {
    if iv.len() != BLOCK_SIZE {
        return Err(CryptoError::InvalidInputLength {
            expected: "16-byte IV",
            actual: iv.len(),
        });
    }
    let mut out = [0u8; BLOCK_SIZE];
    out.copy_from_slice(iv);
    Ok(out)
}

fn pad(data: &[u8]) -> Vec<u8> {
    let pad_len = BLOCK_SIZE - data.len() % BLOCK_SIZE;
    let mut out = Vec::with_capacity(data.len() + pad_len);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad_len as u8, pad_len));
    out
}

fn unpad(data: &mut Vec<u8>) -> Result<(), CryptoError> {
    let &last = data.last().ok_or(CryptoError::InvalidPadding)?;
    let pad_len = last as usize;
    if pad_len == 0 || pad_len > BLOCK_SIZE || pad_len > data.len() {
        return Err(CryptoError::InvalidPadding);
    }
    if !data[data.len() - pad_len..].iter().all(|&b| b == last) {
        return Err(CryptoError::InvalidPadding);
    }
    data.truncate(data.len() - pad_len);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sp800_38a_cbc_first_block() {
        // NIST SP 800-38A F.2.1 CBC-AES128.Encrypt, first block (we add
        // padding so only compare the first 16 ciphertext bytes).
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let plain = hex("6bc1bee22e409f96e93d7e117393172a");
        let ct = encrypt(&key, &iv, &plain).unwrap();
        assert_eq!(ct[..16].to_vec(), hex("7649abac8119b246cee98e9b12e9197d"));
        assert_eq!(ct.len(), 32); // one content block + one padding block
    }

    #[test]
    fn sp800_38a_cbc_chaining() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = hex("000102030405060708090a0b0c0d0e0f");
        let plain = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        let expected = hex(concat!(
            "7649abac8119b246cee98e9b12e9197d",
            "5086cb9b507219ee95db113a917678b2",
            "73bed6b8e3c1743b7116e69e22229516",
            "3ff1caa1681fac09120eca307586e1a7"
        ));
        let ct = encrypt(&key, &iv, &plain).unwrap();
        assert_eq!(ct[..64].to_vec(), expected);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x42u8; 16];
        let iv = [0x24u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 1000] {
            let plain: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key, &iv, &plain).unwrap();
            assert_eq!(ct.len() % BLOCK_SIZE, 0);
            assert!(ct.len() > plain.len());
            assert_eq!(decrypt(&key, &iv, &ct).unwrap(), plain, "len={len}");
        }
    }

    #[test]
    fn wrong_key_fails_padding() {
        let ct = encrypt(&[1u8; 16], &[0u8; 16], b"some content body").unwrap();
        let result = decrypt(&[2u8; 16], &[0u8; 16], &ct);
        // Overwhelmingly likely to produce invalid padding with a wrong key.
        assert!(result.is_err() || result.unwrap() != b"some content body");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(encrypt(&[0u8; 10], &[0u8; 16], b"x").is_err());
        assert!(encrypt(&[0u8; 16], &[0u8; 8], b"x").is_err());
        assert!(decrypt(&[0u8; 16], &[0u8; 16], &[0u8; 17]).is_err());
        assert!(decrypt(&[0u8; 16], &[0u8; 16], &[]).is_err());
    }

    #[test]
    fn different_iv_different_ciphertext() {
        let key = [9u8; 16];
        let c1 = encrypt(&key, &[0u8; 16], b"identical plaintext").unwrap();
        let c2 = encrypt(&key, &[1u8; 16], b"identical plaintext").unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn encrypted_blocks_counts_padding() {
        assert_eq!(encrypted_blocks(0), 1);
        assert_eq!(encrypted_blocks(15), 1);
        assert_eq!(encrypted_blocks(16), 2);
        assert_eq!(encrypted_blocks(17), 2);
        assert_eq!(encrypted_blocks(3_500_000), 3_500_000 / 16 + 1);
    }

    #[test]
    fn unpad_rejects_malformed() {
        let mut v = vec![1u8, 2, 3, 0];
        assert!(unpad(&mut v).is_err()); // zero padding byte
        let mut v = vec![1u8, 2, 3, 17];
        assert!(unpad(&mut v).is_err()); // longer than block
        let mut v = vec![2u8, 3, 2, 2];
        assert!(unpad(&mut v).is_ok());
        assert_eq!(v, vec![2u8, 3]);
    }
}
