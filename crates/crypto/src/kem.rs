//! The RSAES-KEM + AES key-wrap construction ("KEM-KWS") that OMA DRM 2 uses
//! to protect `K_MAC ‖ K_REK` inside a Rights Object, and that Figure 3 of
//! the paper depicts:
//!
//! ```text
//!   C1 = RSAEP(pub, Z)                (1024 bits)
//!   KEK = KDF2(I2OSP(Z))              (128 bits)
//!   C2 = AES-WRAP(KEK, K_MAC ‖ K_REK) (320 bits)
//!   C  = C1 ‖ C2
//! ```
//!
//! and, on the receiving DRM Agent:
//!
//! ```text
//!   Z   = RSADP(priv, C1)
//!   KEK = KDF2(I2OSP(Z))
//!   K_MAC ‖ K_REK = AES-UNWRAP(KEK, C2)
//! ```

use crate::backend::{CryptoBackend, Unmetered};
use crate::kdf::derive_kek_with;
use crate::keywrap;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::CryptoError;
use oma_bignum::{prime, BigUint};
use rand::RngCore;

/// Size in bytes of each symmetric key carried by the KEM (128-bit keys).
pub const SYMMETRIC_KEY_LEN: usize = 16;

/// The two ciphertext components `C1` (RSA part) and `C2` (wrapped keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WrappedKeys {
    /// `C1`: the RSA-encrypted KEM secret, exactly one modulus in length.
    pub c1: Vec<u8>,
    /// `C2`: the AES-wrapped `K_MAC ‖ K_REK`, 40 bytes for two 128-bit keys.
    pub c2: Vec<u8>,
}

impl WrappedKeys {
    /// Total ciphertext length `|C1| + |C2|`.
    pub fn len(&self) -> usize {
        self.c1.len() + self.c2.len()
    }

    /// Always false for a well-formed wrapping.
    pub fn is_empty(&self) -> bool {
        self.c1.is_empty() && self.c2.is_empty()
    }

    /// Concatenates `C1 ‖ C2` as the Rights Object carries it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.c1);
        out.extend_from_slice(&self.c2);
        out
    }

    /// Splits a concatenated `C1 ‖ C2` given the recipient's modulus size.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidInputLength`] if `bytes` is shorter than
    /// one RSA modulus plus the 24-byte minimum wrap size.
    pub fn from_bytes(bytes: &[u8], modulus_bytes: usize) -> Result<Self, CryptoError> {
        if bytes.len() < modulus_bytes + 24 {
            return Err(CryptoError::InvalidInputLength {
                expected: "C1 || C2 of at least modulus + 24 bytes",
                actual: bytes.len(),
            });
        }
        Ok(WrappedKeys {
            c1: bytes[..modulus_bytes].to_vec(),
            c2: bytes[modulus_bytes..].to_vec(),
        })
    }
}

/// Wraps `kmac ‖ krek` for `recipient` using a fresh KEM secret drawn from `rng`.
///
/// # Errors
///
/// Propagates RSA range errors (which cannot occur for honestly generated
/// secrets) and key-wrap input errors.
pub fn wrap_keys<R: RngCore + ?Sized>(
    recipient: &RsaPublicKey,
    kmac: &[u8; SYMMETRIC_KEY_LEN],
    krek: &[u8; SYMMETRIC_KEY_LEN],
    rng: &mut R,
) -> Result<WrappedKeys, CryptoError> {
    wrap_keys_with(&Unmetered, recipient, kmac, krek, rng)
}

/// [`wrap_keys`] routed through a [`CryptoBackend`]: the RSA encryption of
/// the KEM secret, the KDF2 hashing and the AES key wrap all run (and are
/// charged) on the backend.
///
/// # Errors
///
/// Same as [`wrap_keys`].
pub fn wrap_keys_with<R: RngCore + ?Sized>(
    backend: &dyn CryptoBackend,
    recipient: &RsaPublicKey,
    kmac: &[u8; SYMMETRIC_KEY_LEN],
    krek: &[u8; SYMMETRIC_KEY_LEN],
    rng: &mut R,
) -> Result<WrappedKeys, CryptoError> {
    // Z uniformly random in [2, n-2].
    let two = BigUint::from_u64(2);
    let upper = recipient.modulus() - &two;
    let z = prime::random_in_range(&two, &upper, rng);
    let z_octets = z
        .to_bytes_be_padded(recipient.modulus_bytes())
        .ok_or(CryptoError::MessageRepresentativeOutOfRange)?;

    let c1 = backend
        .rsa_public_exp(recipient, &z)?
        .to_bytes_be_padded(recipient.modulus_bytes())
        .ok_or(CryptoError::MessageRepresentativeOutOfRange)?;

    let kek = derive_kek_with(backend, &z_octets);
    let mut key_material = [0u8; 2 * SYMMETRIC_KEY_LEN];
    key_material[..SYMMETRIC_KEY_LEN].copy_from_slice(kmac);
    key_material[SYMMETRIC_KEY_LEN..].copy_from_slice(krek);
    let c2 = keywrap::wrap_with(backend, &kek, &key_material)?;
    Ok(WrappedKeys { c1, c2 })
}

/// Unwraps `C1 ‖ C2` with the recipient's private key, returning
/// `(K_MAC, K_REK)`.
///
/// # Errors
///
/// Returns [`CryptoError::KeyUnwrapIntegrity`] when the wrapped keys fail
/// their integrity check (wrong private key or tampered Rights Object) and
/// [`CryptoError::MalformedPlaintext`] when `C2` does not contain exactly two
/// 128-bit keys.
pub fn unwrap_keys(
    recipient: &RsaPrivateKey,
    wrapped: &WrappedKeys,
) -> Result<([u8; SYMMETRIC_KEY_LEN], [u8; SYMMETRIC_KEY_LEN]), CryptoError> {
    unwrap_keys_with(&Unmetered, recipient, wrapped)
}

/// [`unwrap_keys`] routed through a [`CryptoBackend`] (Figure 3 of the paper,
/// DRM Agent side: RSADP, KDF2 and AES-unwrap).
///
/// # Errors
///
/// Same as [`unwrap_keys`].
pub fn unwrap_keys_with(
    backend: &dyn CryptoBackend,
    recipient: &RsaPrivateKey,
    wrapped: &WrappedKeys,
) -> Result<([u8; SYMMETRIC_KEY_LEN], [u8; SYMMETRIC_KEY_LEN]), CryptoError> {
    let c1 = BigUint::from_bytes_be(&wrapped.c1);
    let z = backend.rsa_private_exp(recipient, &c1)?;
    let z_octets = z
        .to_bytes_be_padded(recipient.public().modulus_bytes())
        .ok_or(CryptoError::MessageRepresentativeOutOfRange)?;
    let kek = derive_kek_with(backend, &z_octets);
    let key_material = keywrap::unwrap_with(backend, &kek, &wrapped.c2)?;
    if key_material.len() != 2 * SYMMETRIC_KEY_LEN {
        return Err(CryptoError::MalformedPlaintext(
            "expected exactly two 128-bit keys",
        ));
    }
    let mut kmac = [0u8; SYMMETRIC_KEY_LEN];
    let mut krek = [0u8; SYMMETRIC_KEY_LEN];
    kmac.copy_from_slice(&key_material[..SYMMETRIC_KEY_LEN]);
    krek.copy_from_slice(&key_material[SYMMETRIC_KEY_LEN..]);
    Ok((kmac, krek))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0x5eed))
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(1);
        let kmac = [0x11u8; 16];
        let krek = [0x22u8; 16];
        let wrapped = wrap_keys(pair.public(), &kmac, &krek, &mut rng).unwrap();
        assert_eq!(wrapped.c1.len(), pair.public().modulus_bytes());
        assert_eq!(wrapped.c2.len(), 40);
        let (m, r) = unwrap_keys(pair.private(), &wrapped).unwrap();
        assert_eq!(m, kmac);
        assert_eq!(r, krek);
    }

    #[test]
    fn wrong_private_key_fails_integrity() {
        let pair_a = pair();
        let pair_b = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(0xbad));
        let mut rng = StdRng::seed_from_u64(2);
        let wrapped = wrap_keys(pair_a.public(), &[1u8; 16], &[2u8; 16], &mut rng).unwrap();
        assert!(unwrap_keys(pair_b.private(), &wrapped).is_err());
    }

    #[test]
    fn tampered_c2_fails() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(3);
        let mut wrapped = wrap_keys(pair.public(), &[1u8; 16], &[2u8; 16], &mut rng).unwrap();
        wrapped.c2[5] ^= 1;
        assert_eq!(
            unwrap_keys(pair.private(), &wrapped),
            Err(CryptoError::KeyUnwrapIntegrity)
        );
    }

    #[test]
    fn tampered_c1_fails() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(4);
        let mut wrapped = wrap_keys(pair.public(), &[1u8; 16], &[2u8; 16], &mut rng).unwrap();
        wrapped.c1[10] ^= 1;
        assert!(unwrap_keys(pair.private(), &wrapped).is_err());
    }

    #[test]
    fn concatenated_roundtrip() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(5);
        let wrapped = wrap_keys(pair.public(), &[7u8; 16], &[8u8; 16], &mut rng).unwrap();
        let bytes = wrapped.to_bytes();
        assert_eq!(bytes.len(), wrapped.len());
        let parsed = WrappedKeys::from_bytes(&bytes, pair.public().modulus_bytes()).unwrap();
        assert_eq!(parsed, wrapped);
        assert!(!parsed.is_empty());
        assert!(WrappedKeys::from_bytes(&bytes[..20], pair.public().modulus_bytes()).is_err());
    }

    #[test]
    fn fresh_randomness_per_wrap() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(6);
        let a = wrap_keys(pair.public(), &[1u8; 16], &[2u8; 16], &mut rng).unwrap();
        let b = wrap_keys(pair.public(), &[1u8; 16], &[2u8; 16], &mut rng).unwrap();
        assert_ne!(a.c1, b.c1, "KEM secret must be fresh per wrap");
    }
}
