//! From-scratch implementations of the cryptographic algorithms mandated by
//! OMA DRM 2 (§2.4.5 of Thull & Sannino, DATE 2005):
//!
//! * [`sha1`] — SHA-1 hash function,
//! * [`hmac`] — HMAC SHA-1 message authentication,
//! * [`aes`] — the AES-128 block cipher,
//! * [`cbc`] — AES-128 CBC content encryption with PKCS#7 padding,
//! * [`keywrap`] — 128-bit AES key wrap (RFC 3394),
//! * [`kdf`] — the KDF2 key derivation function,
//! * [`rsa`] — 1024-bit RSA key generation and the RSAEP / RSADP / RSASP1 /
//!   RSAVP1 primitives of PKCS#1 v2.1,
//! * [`pss`] — the RSA-PSS signature scheme (EMSA-PSS encoding),
//! * [`kem`] — the RSAES-KEM + key-wrap construction that protects
//!   `K_MAC ‖ K_REK` inside a Rights Object,
//! * [`backend`] — the pluggable crypto-backend layer: a [`CryptoBackend`]
//!   trait over AES block operations, SHA-1/HMAC hashing and the RSA
//!   exponentiations, with a software implementation and a cycle-accurate
//!   simulated hardware-macro implementation so the paper's HW/SW
//!   partitionings are *executable*, not just priced,
//! * [`provider`] — an instrumented [`CryptoEngine`]
//!   that performs every operation through a backend *and* records
//!   `(algorithm, invocations, blocks)` in lock-free sharded counters so
//!   that the performance model in `oma-perf` can cost a protocol run
//!   exactly the way the paper's Java model did.
//!
//! Nothing in this crate is intended for production security use: SHA-1 and
//! 1024-bit RSA are obsolete primitives that are implemented here because the
//! 2005 standard under study mandates them.
//!
//! # Example
//!
//! ```
//! use oma_crypto::sha1::sha1;
//! use oma_crypto::aes::Aes128;
//!
//! let digest = sha1(b"abc");
//! assert_eq!(digest[0], 0xa9);
//!
//! let cipher = Aes128::new(&[0u8; 16]);
//! let block = cipher.encrypt_block(&[0u8; 16]);
//! assert_eq!(cipher.decrypt_block(&block), [0u8; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod backend;
pub mod cbc;
pub mod error;
pub mod hmac;
pub mod kdf;
pub mod kem;
pub mod keywrap;
pub mod provider;
pub mod pss;
pub mod rsa;
pub mod sha1;

pub use backend::{
    AlgorithmCost, CostProfile, CryptoBackend, CycleMeter, HwMacroBackend, Realisation,
    SoftwareBackend,
};
pub use error::CryptoError;
pub use provider::{Algorithm, CryptoEngine, OpTrace};
pub use rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
