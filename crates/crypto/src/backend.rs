//! The pluggable crypto-backend layer.
//!
//! The paper's central question is *where* each cryptographic algorithm runs:
//! in software on the 200 MHz processor core, or inside a dedicated hardware
//! macro on the system bus. The seed reproduction hardwired every actor to
//! the software implementation and only *priced* the hardware variants
//! analytically; this module makes the partitionings executable.
//!
//! A [`CryptoBackend`] exposes the cost-relevant primitives at the
//! granularity of the paper's Table 1:
//!
//! * AES-128 **block** encryption/decryption plus the per-invocation key
//!   schedule ([`CryptoBackend::aes_schedule`]),
//! * SHA-1 and HMAC-SHA-1 over a message, charged per 128 bits of data
//!   (Table 1's unit; internally this is the compression-function work),
//! * the RSA public/private **exponentiations** (RSAEP/RSAVP1 and
//!   RSADP/RSASP1), charged per 1024-bit operation.
//!
//! Two implementations are provided:
//!
//! * [`SoftwareBackend`] — the from-scratch software primitives of this
//!   crate, charging the Table 1 *software* cycle costs,
//! * [`HwMacroBackend`] — a cycle-accurate simulation of dedicated hardware
//!   macros: it produces **byte-identical outputs** (the macros implement
//!   the same standardised algorithms) while charging the Table 1
//!   *hardware* cycle costs for every algorithm assigned to a macro, and
//!   software costs for algorithms left on the core. A real silicon port
//!   would override the primitive methods instead.
//!
//! Every primitive charges a lock-free, per-algorithm sharded [`CycleMeter`],
//! so a protocol run measures its own cycle bill as it executes. The charge
//! of an engine-level operation equals [`AlgorithmCost::cycles`] over the
//! operation counts recorded in the engine's
//! [`OpTrace`](crate::provider::OpTrace) — the measured meter and the priced
//! trace are two views of the same accounting and are cross-checked in the
//! test suites.

use crate::aes::Aes128;
use crate::provider::{Algorithm, OpCount};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::{hmac, sha1, CryptoError};
use oma_bignum::BigUint;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Converts a byte length into 128-bit blocks, charging at least one block
/// (hashing an empty message still runs a compression).
pub fn data_blocks(len: usize) -> u64 {
    (len as u64).div_ceil(16).max(1)
}

/// Where one algorithm is realised inside a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Realisation {
    /// Software running on the general-purpose processor core.
    Software,
    /// A dedicated hardware macro attached to the system bus (simulated).
    HardwareMacro,
}

/// Which AES key schedule to prepare (Table 1 prices the two directions
/// differently: decryption pays for the inverse key schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesDirection {
    /// Encryption schedule.
    Encrypt,
    /// Decryption schedule.
    Decrypt,
}

impl AesDirection {
    /// The Table 1 row the schedule is charged against.
    pub fn algorithm(self) -> Algorithm {
        match self {
            AesDirection::Encrypt => Algorithm::AesEncrypt,
            AesDirection::Decrypt => Algorithm::AesDecrypt,
        }
    }
}

/// Cycle cost of one algorithm in one realisation: a fixed per-invocation
/// offset (key schedule, fixed-length hashing) plus a cost per processed
/// block (128-bit data block, or one RSA exponentiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AlgorithmCost {
    /// Fixed cycles per invocation.
    pub offset_cycles: u64,
    /// Cycles per processed block.
    pub per_block_cycles: u64,
}

impl AlgorithmCost {
    /// Creates a cost entry.
    pub const fn new(offset_cycles: u64, per_block_cycles: u64) -> Self {
        AlgorithmCost {
            offset_cycles,
            per_block_cycles,
        }
    }

    /// Cycles consumed by `count` operations under this cost.
    pub fn cycles(&self, count: OpCount) -> u64 {
        self.offset_cycles * count.invocations + self.per_block_cycles * count.blocks
    }
}

/// A per-algorithm cost profile — one column of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostProfile {
    costs: [AlgorithmCost; 6],
}

impl CostProfile {
    /// Builds a profile from a per-algorithm cost function.
    pub fn new(cost: impl Fn(Algorithm) -> AlgorithmCost) -> Self {
        let mut costs = [AlgorithmCost::default(); 6];
        for alg in Algorithm::ALL {
            costs[alg.index()] = cost(alg);
        }
        CostProfile { costs }
    }

    /// The software column of Table 1 (ARM9-class core at 200 MHz).
    ///
    /// The paper prints the software cost of the RSA private-key operation
    /// as "3,774,0000" cycles; the value that reproduces the paper's own
    /// Figures 6 and 7 is **37 740 000** cycles (a misplaced comma), which
    /// is the value used here.
    pub fn paper_software() -> Self {
        Self::new(|alg| match alg {
            Algorithm::AesEncrypt => AlgorithmCost::new(360, 830),
            Algorithm::AesDecrypt => AlgorithmCost::new(950, 830),
            Algorithm::Sha1 => AlgorithmCost::new(0, 400),
            Algorithm::HmacSha1 => AlgorithmCost::new(1_200, 400),
            Algorithm::RsaPublic => AlgorithmCost::new(0, 2_160_000),
            Algorithm::RsaPrivate => AlgorithmCost::new(0, 37_740_000),
        })
    }

    /// The hardware-macro column of Table 1.
    pub fn paper_hardware() -> Self {
        Self::new(|alg| match alg {
            Algorithm::AesEncrypt => AlgorithmCost::new(0, 10),
            Algorithm::AesDecrypt => AlgorithmCost::new(10, 10),
            Algorithm::Sha1 => AlgorithmCost::new(0, 20),
            Algorithm::HmacSha1 => AlgorithmCost::new(240, 20),
            Algorithm::RsaPublic => AlgorithmCost::new(0, 10_000),
            Algorithm::RsaPrivate => AlgorithmCost::new(0, 260_000),
        })
    }

    /// A profile charging nothing (used by the un-instrumented plain
    /// functions and in tests).
    pub fn zero() -> Self {
        Self::new(|_| AlgorithmCost::default())
    }

    /// The cost of one algorithm.
    pub fn cost(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.costs[algorithm.index()]
    }
}

/// A lock-free cycle meter, sharded per algorithm so concurrent charges from
/// different algorithms never contend on one counter.
#[derive(Debug, Default)]
pub struct CycleMeter {
    shards: [AtomicU64; 6],
}

impl CycleMeter {
    /// A fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the shard of `algorithm`.
    pub fn charge(&self, algorithm: Algorithm, cycles: u64) {
        self.shards[algorithm.index()].fetch_add(cycles, Ordering::Relaxed);
    }

    /// Cycles charged so far against `algorithm`.
    pub fn cycles_of(&self, algorithm: Algorithm) -> u64 {
        self.shards[algorithm.index()].load(Ordering::Relaxed)
    }

    /// Total cycles charged across all algorithms.
    pub fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Returns the total and resets every shard to zero.
    ///
    /// The reset is per-shard atomic, not a cross-shard snapshot; callers
    /// that need exact phase boundaries must quiesce the backend first (the
    /// measured runner drives one agent from one thread, so this holds).
    pub fn take_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.swap(0, Ordering::Relaxed))
            .sum()
    }

    /// Resets every shard to zero.
    pub fn reset(&self) {
        self.take_total();
    }
}

/// A pluggable realisation of the six Table 1 algorithms.
///
/// The provided methods implement the functional reference behaviour (the
/// from-scratch software primitives of this crate) and charge the backend's
/// [`CycleMeter`] according to [`CryptoBackend::cost`]. Implementors choose
/// the partitioning and the cost columns; a backend bridging to real
/// accelerator silicon would override the primitive methods themselves.
///
/// All outputs are byte-identical across backends by construction: hardware
/// macros implement the same standardised algorithms, only their cycle bill
/// differs.
pub trait CryptoBackend: Send + Sync + fmt::Debug {
    /// Short display name ("SW", "SW/HW", "HW", …).
    fn name(&self) -> &str;

    /// Where `algorithm` runs in this backend.
    fn realisation(&self, algorithm: Algorithm) -> Realisation;

    /// The cycle cost this backend charges for `algorithm`.
    fn cost(&self, algorithm: Algorithm) -> AlgorithmCost;

    /// The backend's cycle meter.
    fn meter(&self) -> &CycleMeter;

    /// Charges `invocations` invocation offsets plus `blocks` block costs of
    /// `algorithm` to the meter.
    fn charge(&self, algorithm: Algorithm, invocations: u64, blocks: u64) {
        let cost = self.cost(algorithm);
        self.meter().charge(
            algorithm,
            cost.offset_cycles * invocations + cost.per_block_cycles * blocks,
        );
    }

    /// Total cycles charged so far.
    fn charged_cycles(&self) -> u64 {
        self.meter().total()
    }

    /// Returns the charged cycles and resets the meter.
    fn take_charged_cycles(&self) -> u64 {
        self.meter().take_total()
    }

    // ----- AES-128 (block granularity) --------------------------------------

    /// Runs the AES key schedule for `direction`, charging the
    /// per-invocation offset of the corresponding Table 1 row.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKeyLength`] for a key that is not 16
    /// bytes.
    fn aes_schedule(&self, key: &[u8], direction: AesDirection) -> Result<Aes128, CryptoError> {
        self.charge(direction.algorithm(), 1, 0);
        Aes128::try_new(key)
    }

    /// Encrypts one 128-bit block, charging one block of `AesEncrypt`.
    fn aes_encrypt_block(&self, cipher: &Aes128, block: &[u8; 16]) -> [u8; 16] {
        self.charge(Algorithm::AesEncrypt, 0, 1);
        cipher.encrypt_block(block)
    }

    /// Decrypts one 128-bit block, charging one block of `AesDecrypt`.
    fn aes_decrypt_block(&self, cipher: &Aes128, block: &[u8; 16]) -> [u8; 16] {
        self.charge(Algorithm::AesDecrypt, 0, 1);
        cipher.decrypt_block(block)
    }

    // ----- hashing (per 128 bits of message data) ---------------------------

    /// SHA-1 of `data`, charged per 128 bits of message.
    fn sha1(&self, data: &[u8]) -> [u8; sha1::DIGEST_SIZE] {
        self.charge(Algorithm::Sha1, 1, data_blocks(data.len()));
        sha1::sha1(data)
    }

    /// HMAC-SHA-1 of `data` under `key`, charged one invocation offset (the
    /// fixed-length key-pad hashing) plus one block per 128 bits of message.
    fn hmac_sha1(&self, key: &[u8], data: &[u8]) -> [u8; sha1::DIGEST_SIZE] {
        self.charge(Algorithm::HmacSha1, 1, data_blocks(data.len()));
        hmac::hmac_sha1(key, data)
    }

    // ----- RSA (per 1024-bit exponentiation) --------------------------------

    /// RSAEP / RSAVP1: one public-key exponentiation.
    ///
    /// # Errors
    ///
    /// See [`RsaPublicKey::rsaep`].
    fn rsa_public_exp(&self, key: &RsaPublicKey, m: &BigUint) -> Result<BigUint, CryptoError> {
        self.charge(Algorithm::RsaPublic, 1, 1);
        key.rsaep(m)
    }

    /// RSADP / RSASP1: one private-key (CRT) exponentiation.
    ///
    /// # Errors
    ///
    /// See [`RsaPrivateKey::rsadp`].
    fn rsa_private_exp(&self, key: &RsaPrivateKey, c: &BigUint) -> Result<BigUint, CryptoError> {
        self.charge(Algorithm::RsaPrivate, 1, 1);
        key.rsadp(c)
    }
}

/// The pure-software backend: every algorithm on the processor core.
#[derive(Debug)]
pub struct SoftwareBackend {
    name: String,
    profile: CostProfile,
    meter: CycleMeter,
}

impl SoftwareBackend {
    /// A software backend charging the Table 1 software cycle costs.
    pub fn new() -> Self {
        Self::with_profile(CostProfile::paper_software())
    }

    /// A software backend with a custom cost profile (sensitivity studies).
    pub fn with_profile(profile: CostProfile) -> Self {
        Self::named("SW", profile)
    }

    /// A software backend with an explicit display name (used when an
    /// all-software architecture variant carries a custom name).
    pub fn named(name: &str, profile: CostProfile) -> Self {
        SoftwareBackend {
            name: name.to_string(),
            profile,
            meter: CycleMeter::new(),
        }
    }
}

impl Default for SoftwareBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl CryptoBackend for SoftwareBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn realisation(&self, _algorithm: Algorithm) -> Realisation {
        Realisation::Software
    }

    fn cost(&self, algorithm: Algorithm) -> AlgorithmCost {
        self.profile.cost(algorithm)
    }

    fn meter(&self) -> &CycleMeter {
        &self.meter
    }
}

/// A cycle-accurate simulation of dedicated hardware macros, with a
/// per-algorithm hardware/software partitioning.
///
/// Algorithms assigned to [`Realisation::HardwareMacro`] charge the hardware
/// cost column; the rest fall back to the core and charge software costs.
/// Outputs are byte-identical to [`SoftwareBackend`] — the macros implement
/// the same standardised algorithms.
#[derive(Debug)]
pub struct HwMacroBackend {
    name: String,
    assignments: [Realisation; 6],
    software: CostProfile,
    hardware: CostProfile,
    meter: CycleMeter,
}

impl HwMacroBackend {
    /// A fully custom partitioning with explicit cost columns.
    pub fn partitioned(
        name: &str,
        assignment: impl Fn(Algorithm) -> Realisation,
        software: CostProfile,
        hardware: CostProfile,
    ) -> Self {
        let mut assignments = [Realisation::Software; 6];
        for alg in Algorithm::ALL {
            assignments[alg.index()] = assignment(alg);
        }
        HwMacroBackend {
            name: name.to_string(),
            assignments,
            software,
            hardware,
            meter: CycleMeter::new(),
        }
    }

    /// The paper's "HW" variant: a dedicated macro for every algorithm.
    pub fn full() -> Self {
        Self::partitioned(
            "HW",
            |_| Realisation::HardwareMacro,
            CostProfile::paper_software(),
            CostProfile::paper_hardware(),
        )
    }

    /// The paper's "SW/HW" variant: AES, SHA-1 and HMAC-SHA-1 as macros,
    /// RSA in software on the core.
    pub fn hybrid() -> Self {
        Self::partitioned(
            "SW/HW",
            |alg| match alg {
                Algorithm::AesEncrypt
                | Algorithm::AesDecrypt
                | Algorithm::Sha1
                | Algorithm::HmacSha1 => Realisation::HardwareMacro,
                Algorithm::RsaPublic | Algorithm::RsaPrivate => Realisation::Software,
            },
            CostProfile::paper_software(),
            CostProfile::paper_hardware(),
        )
    }
}

impl CryptoBackend for HwMacroBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn realisation(&self, algorithm: Algorithm) -> Realisation {
        self.assignments[algorithm.index()]
    }

    fn cost(&self, algorithm: Algorithm) -> AlgorithmCost {
        match self.realisation(algorithm) {
            Realisation::Software => self.software.cost(algorithm),
            Realisation::HardwareMacro => self.hardware.cost(algorithm),
        }
    }

    fn meter(&self) -> &CycleMeter {
        &self.meter
    }
}

/// A zero-cost pass-through backend used by the plain module functions
/// (`cbc::encrypt`, `keywrap::wrap`, …) so the backend-routed and plain code
/// paths share one implementation without metering overhead mattering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unmetered;

/// The shared meter of [`Unmetered`] (all charges are zero cycles).
static UNMETERED_METER: CycleMeter = CycleMeter {
    shards: [const { AtomicU64::new(0) }; 6],
};

impl CryptoBackend for Unmetered {
    fn name(&self) -> &str {
        "unmetered"
    }

    fn realisation(&self, _algorithm: Algorithm) -> Realisation {
        Realisation::Software
    }

    fn cost(&self, _algorithm: Algorithm) -> AlgorithmCost {
        AlgorithmCost::default()
    }

    fn meter(&self) -> &CycleMeter {
        &UNMETERED_METER
    }

    fn charge(&self, _algorithm: Algorithm, _invocations: u64, _blocks: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_backend_charges_table1_software_costs() {
        let backend = SoftwareBackend::new();
        let digest = backend.sha1(&[0u8; 160]);
        assert_eq!(digest, sha1::sha1(&[0u8; 160]));
        // 10 blocks at 400 cycles each, no offset.
        assert_eq!(backend.charged_cycles(), 4_000);
        assert_eq!(backend.meter().cycles_of(Algorithm::Sha1), 4_000);
        assert_eq!(backend.name(), "SW");
        assert_eq!(
            backend.realisation(Algorithm::RsaPrivate),
            Realisation::Software
        );
    }

    #[test]
    fn hw_backend_is_byte_identical_but_cheaper() {
        let sw = SoftwareBackend::new();
        let hw = HwMacroBackend::full();
        let data = [0xa5u8; 333];
        assert_eq!(sw.sha1(&data), hw.sha1(&data));
        assert_eq!(sw.hmac_sha1(b"key", &data), hw.hmac_sha1(b"key", &data));
        assert!(hw.charged_cycles() < sw.charged_cycles());
        assert_eq!(hw.name(), "HW");
        assert_eq!(hw.realisation(Algorithm::Sha1), Realisation::HardwareMacro);
    }

    #[test]
    fn aes_block_ops_charge_schedule_offset_plus_blocks() {
        let backend = SoftwareBackend::new();
        let cipher = backend
            .aes_schedule(&[0u8; 16], AesDirection::Decrypt)
            .unwrap();
        let block = [7u8; 16];
        let ct = backend.aes_encrypt_block(&cipher, &block);
        assert_eq!(backend.aes_decrypt_block(&cipher, &ct), block);
        // Decrypt schedule offset 950 + one encrypt block 830 + one decrypt
        // block 830.
        assert_eq!(backend.meter().cycles_of(Algorithm::AesDecrypt), 950 + 830);
        assert_eq!(backend.meter().cycles_of(Algorithm::AesEncrypt), 830);
    }

    #[test]
    fn hybrid_backend_splits_cost_columns() {
        let hybrid = HwMacroBackend::hybrid();
        assert_eq!(hybrid.name(), "SW/HW");
        assert_eq!(hybrid.cost(Algorithm::Sha1), AlgorithmCost::new(0, 20));
        assert_eq!(
            hybrid.cost(Algorithm::RsaPrivate),
            AlgorithmCost::new(0, 37_740_000)
        );
        assert_eq!(
            hybrid.realisation(Algorithm::AesEncrypt),
            Realisation::HardwareMacro
        );
        assert_eq!(
            hybrid.realisation(Algorithm::RsaPublic),
            Realisation::Software
        );
    }

    #[test]
    fn rsa_exponentiations_charge_one_op() {
        use rand::SeedableRng;
        let pair = crate::rsa::RsaKeyPair::generate(256, &mut rand::rngs::StdRng::seed_from_u64(5));
        let backend = HwMacroBackend::full();
        let m = BigUint::from_u64(0x1234);
        let c = backend.rsa_public_exp(pair.public(), &m).unwrap();
        assert_eq!(backend.rsa_private_exp(pair.private(), &c).unwrap(), m);
        assert_eq!(backend.meter().cycles_of(Algorithm::RsaPublic), 10_000);
        assert_eq!(backend.meter().cycles_of(Algorithm::RsaPrivate), 260_000);
    }

    #[test]
    fn meter_take_total_resets() {
        let backend = SoftwareBackend::new();
        backend.sha1(b"x");
        assert!(backend.charged_cycles() > 0);
        let taken = backend.take_charged_cycles();
        assert!(taken > 0);
        assert_eq!(backend.charged_cycles(), 0);
    }

    #[test]
    fn meter_is_lock_free_under_concurrency() {
        use std::sync::Arc;
        let meter = Arc::new(CycleMeter::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let meter = Arc::clone(&meter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    meter.charge(Algorithm::Sha1, 1);
                    meter.charge(Algorithm::AesDecrypt, 2);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(meter.cycles_of(Algorithm::Sha1), 40_000);
        assert_eq!(meter.cycles_of(Algorithm::AesDecrypt), 80_000);
        assert_eq!(meter.total(), 120_000);
        meter.reset();
        assert_eq!(meter.total(), 0);
    }

    #[test]
    fn unmetered_backend_never_charges() {
        let backend = Unmetered;
        backend.sha1(&[0u8; 1024]);
        let cipher = backend
            .aes_schedule(&[0u8; 16], AesDirection::Encrypt)
            .unwrap();
        backend.aes_encrypt_block(&cipher, &[0u8; 16]);
        assert_eq!(backend.charged_cycles(), 0);
    }

    #[test]
    fn cost_profiles_match_table1() {
        let sw = CostProfile::paper_software();
        let hw = CostProfile::paper_hardware();
        assert_eq!(sw.cost(Algorithm::AesDecrypt), AlgorithmCost::new(950, 830));
        assert_eq!(sw.cost(Algorithm::RsaPrivate).per_block_cycles, 37_740_000);
        assert_eq!(hw.cost(Algorithm::HmacSha1), AlgorithmCost::new(240, 20));
        assert_eq!(
            CostProfile::zero().cost(Algorithm::Sha1),
            AlgorithmCost::default()
        );
    }

    #[test]
    fn algorithm_cost_arithmetic() {
        let cost = AlgorithmCost::new(100, 10);
        assert_eq!(
            cost.cycles(OpCount {
                invocations: 2,
                blocks: 30
            }),
            500
        );
        assert_eq!(cost.cycles(OpCount::default()), 0);
    }

    #[test]
    fn data_block_accounting() {
        assert_eq!(data_blocks(0), 1);
        assert_eq!(data_blocks(16), 1);
        assert_eq!(data_blocks(17), 2);
        assert_eq!(data_blocks(3_500_000), 218_750);
    }

    #[test]
    fn backends_are_object_safe_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SoftwareBackend>();
        assert_send_sync::<HwMacroBackend>();
        let boxed: Box<dyn CryptoBackend> = Box::new(SoftwareBackend::new());
        assert_eq!(boxed.name(), "SW");
    }
}
