//! RSA key generation and the PKCS#1 v2.1 primitives RSAEP, RSADP, RSASP1
//! and RSAVP1, as mandated by OMA DRM 2 for its 1024-bit PKI operations.
//!
//! The private-key operations use the Chinese Remainder Theorem
//! representation (`dP`, `dQ`, `qInv`) — the same optimisation an embedded
//! software implementation would use, and the one the paper's software cycle
//! count for "RSA 1024 Private Key Op" corresponds to.

use crate::CryptoError;
use oma_bignum::{prime, BigUint, Montgomery};
use rand::RngCore;
use std::sync::{Arc, OnceLock};

/// A lazily-built, shared Montgomery context for one modulus.
///
/// Keys cache one of these per modulus they exponentiate by, so the `R² mod
/// n` setup division is paid once per key instead of once per operation.
/// The cell is deliberately invisible to `PartialEq`/`Debug`: two keys with
/// equal numeric components are equal whether or not their caches are warm,
/// and cloning a key shares the already-built context. `None` records that
/// the modulus is even and Montgomery reduction does not apply.
type CachedContext = OnceLock<Option<Arc<Montgomery>>>;

/// Builds (or fetches) the cached context for `modulus`.
fn context_for<'a>(cell: &'a CachedContext, modulus: &BigUint) -> Option<&'a Montgomery> {
    cell.get_or_init(|| Montgomery::new(modulus.clone()).map(Arc::new))
        .as_deref()
}

/// `base^exponent mod modulus` through a cached context, falling back to the
/// uncached naive ladder for even moduli (never the case for RSA keys, but
/// the API stays total).
fn modpow_cached(
    cell: &CachedContext,
    base: &BigUint,
    exponent: &BigUint,
    modulus: &BigUint,
) -> BigUint {
    match context_for(cell, modulus) {
        Some(ctx) => ctx.modpow(base, exponent),
        None => base.modpow_naive(exponent, modulus),
    }
}

/// Default RSA modulus size used by OMA DRM 2 (bits).
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// The conventional public exponent `F4 = 65537`.
pub const PUBLIC_EXPONENT: u64 = 65_537;

/// An RSA public key `(n, e)`.
///
/// # Example
///
/// ```
/// use oma_crypto::rsa::RsaKeyPair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pair = RsaKeyPair::generate(512, &mut rng);
/// assert_eq!(pair.public().modulus_bits(), 512);
/// ```
#[derive(Clone)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
    n_ctx: CachedContext,
}

impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        // The context cache is derived state; equality is over (n, e) only.
        self.n == other.n && self.e == other.e
    }
}

impl Eq for RsaPublicKey {}

impl std::fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsaPublicKey")
            .field("n", &self.n)
            .field("e", &self.e)
            .finish()
    }
}

/// An RSA private key with CRT parameters.
#[derive(Clone)]
pub struct RsaPrivateKey {
    public: RsaPublicKey,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    p_ctx: CachedContext,
    q_ctx: CachedContext,
}

impl PartialEq for RsaPrivateKey {
    fn eq(&self, other: &Self) -> bool {
        // Context caches excluded, as for `RsaPublicKey`.
        self.public == other.public
            && self.d == other.d
            && self.p == other.p
            && self.q == other.q
            && self.dp == other.dp
            && self.dq == other.dq
            && self.qinv == other.qinv
    }
}

impl Eq for RsaPrivateKey {}

impl std::fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Do not print private material.
        f.debug_struct("RsaPrivateKey")
            .field("modulus_bits", &self.public.modulus_bits())
            .finish()
    }
}

/// A matching RSA public/private key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKeyPair {
    private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Constructs a public key from raw modulus and exponent.
    pub fn new(n: BigUint, e: BigUint) -> Self {
        RsaPublicKey {
            n,
            e,
            n_ctx: OnceLock::new(),
        }
    }

    /// Forces the cached Montgomery context for `n` to be built now, so a
    /// long-lived identity (a Rights Issuer, a trust anchor) pays the `R²`
    /// setup at load time rather than inside its first verification.
    pub fn precompute(&self) {
        let _ = context_for(&self.n_ctx, &self.n);
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// Size of the modulus in bytes (`k` in PKCS#1 terms).
    pub fn modulus_bytes(&self) -> usize {
        self.n.bits().div_ceil(8)
    }

    /// RSAEP / RSAVP1: computes `m^e mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageRepresentativeOutOfRange`] if
    /// `m >= n`.
    pub fn rsaep(&self, m: &BigUint) -> Result<BigUint, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::MessageRepresentativeOutOfRange);
        }
        Ok(modpow_cached(&self.n_ctx, m, &self.e, &self.n))
    }

    /// Encrypts an octet string no longer than the modulus, returning a
    /// ciphertext padded to exactly [`RsaPublicKey::modulus_bytes`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageRepresentativeOutOfRange`] if the
    /// integer interpretation of `data` is `>= n`.
    pub fn encrypt_os(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.encrypt_os_with(&crate::backend::Unmetered, data)
    }

    /// [`RsaPublicKey::encrypt_os`] with the exponentiation routed through a
    /// [`CryptoBackend`](crate::backend::CryptoBackend).
    ///
    /// # Errors
    ///
    /// Same as [`RsaPublicKey::encrypt_os`].
    pub fn encrypt_os_with(
        &self,
        backend: &dyn crate::backend::CryptoBackend,
        data: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let m = BigUint::from_bytes_be(data);
        let c = backend.rsa_public_exp(self, &m)?;
        c.to_bytes_be_padded(self.modulus_bytes())
            .ok_or(CryptoError::MessageRepresentativeOutOfRange)
    }
}

impl RsaPrivateKey {
    /// The corresponding public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private exponent `d`. Exposed (together with
    /// [`RsaPrivateKey::primes`]) so durable storage can serialise a key;
    /// handle with the care private key material deserves.
    pub fn d(&self) -> &BigUint {
        &self.d
    }

    /// The prime factors `(p, q)` of the modulus.
    pub fn primes(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }

    /// Rebuilds a private key from its serialised components `(n, e, d, p,
    /// q)`, recomputing the CRT parameters. This is the inverse of reading
    /// [`RsaPrivateKey::d`] / [`RsaPrivateKey::primes`] — the path a durable
    /// store uses to restore a Rights Issuer identity from a snapshot.
    ///
    /// # Errors
    ///
    /// [`CryptoError::InvalidKeyComponents`] when the components are
    /// inconsistent: `p * q != n`, a factor is below 2, or `q` has no
    /// inverse modulo `p`.
    pub fn from_components(
        public: RsaPublicKey,
        d: BigUint,
        p: BigUint,
        q: BigUint,
    ) -> Result<Self, CryptoError> {
        let two = BigUint::from_u64(2);
        if p < two || q < two || (&p * &q) != public.n {
            return Err(CryptoError::InvalidKeyComponents);
        }
        let one = BigUint::one();
        let p1 = &p - &one;
        let q1 = &q - &one;
        let dp = d.rem_of(&p1);
        let dq = d.rem_of(&q1);
        let qinv = q.mod_inverse(&p).ok_or(CryptoError::InvalidKeyComponents)?;
        Ok(RsaPrivateKey {
            public,
            d,
            p,
            q,
            dp,
            dq,
            qinv,
            p_ctx: OnceLock::new(),
            q_ctx: OnceLock::new(),
        })
    }

    /// Forces the cached Montgomery contexts for both CRT legs (and the
    /// public modulus) to be built now. See [`RsaPublicKey::precompute`].
    pub fn precompute(&self) {
        let _ = context_for(&self.p_ctx, &self.p);
        let _ = context_for(&self.q_ctx, &self.q);
        self.public.precompute();
    }

    /// RSADP / RSASP1 using the CRT representation: computes `c^d mod n`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageRepresentativeOutOfRange`] if `c >= n`.
    pub fn rsadp(&self, c: &BigUint) -> Result<BigUint, CryptoError> {
        if c >= &self.public.n {
            return Err(CryptoError::MessageRepresentativeOutOfRange);
        }
        // m1 = c^dP mod p ; m2 = c^dQ mod q, each through the cached
        // context of its CRT leg.
        let m1 = modpow_cached(&self.p_ctx, c, &self.dp, &self.p);
        let m2 = modpow_cached(&self.q_ctx, c, &self.dq, &self.q);
        // h = qInv * (m1 - m2) mod p
        let diff = m1.sub_mod(&m2, &self.p);
        let h = self.qinv.mul_mod(&diff, &self.p);
        // m = m2 + h * q
        Ok(&m2 + &(&h * &self.q))
    }

    /// Decrypts an octet string produced by [`RsaPublicKey::encrypt_os`],
    /// returning exactly `modulus_bytes` bytes (left-padded with zeros).
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError::MessageRepresentativeOutOfRange`] for an
    /// out-of-range ciphertext.
    pub fn decrypt_os(&self, data: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.decrypt_os_with(&crate::backend::Unmetered, data)
    }

    /// [`RsaPrivateKey::decrypt_os`] with the exponentiation routed through a
    /// [`CryptoBackend`](crate::backend::CryptoBackend).
    ///
    /// # Errors
    ///
    /// Same as [`RsaPrivateKey::decrypt_os`].
    pub fn decrypt_os_with(
        &self,
        backend: &dyn crate::backend::CryptoBackend,
        data: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let c = BigUint::from_bytes_be(data);
        let m = backend.rsa_private_exp(self, &c)?;
        m.to_bytes_be_padded(self.public.modulus_bytes())
            .ok_or(CryptoError::MessageRepresentativeOutOfRange)
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64` or `bits` is odd.
    pub fn generate<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 64, "RSA modulus must be at least 64 bits");
        assert!(bits.is_multiple_of(2), "RSA modulus size must be even");
        let e = BigUint::from_u64(PUBLIC_EXPONENT);
        loop {
            let p = prime::generate_rsa_prime(bits / 2, &e, rng);
            let q = loop {
                let q = prime::generate_rsa_prime(bits / 2, &e, rng);
                if q != p {
                    break q;
                }
            };
            let n = &p * &q;
            if n.bits() != bits {
                continue;
            }
            let one = BigUint::one();
            let p1 = &p - &one;
            let q1 = &q - &one;
            let phi = &p1 * &q1;
            let d = match e.mod_inverse(&phi) {
                Some(d) => d,
                None => continue,
            };
            let dp = d.rem_of(&p1);
            let dq = d.rem_of(&q1);
            let qinv = match q.mod_inverse(&p) {
                Some(v) => v,
                None => continue,
            };
            let public = RsaPublicKey::new(n, e.clone());
            return RsaKeyPair {
                private: RsaPrivateKey {
                    public,
                    d,
                    p,
                    q,
                    dp,
                    dq,
                    qinv,
                    p_ctx: OnceLock::new(),
                    q_ctx: OnceLock::new(),
                },
            };
        }
    }

    /// Generates the standard OMA DRM 1024-bit key pair.
    pub fn generate_default<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::generate(DEFAULT_MODULUS_BITS, rng)
    }

    /// The public half.
    pub fn public(&self) -> &RsaPublicKey {
        &self.private.public
    }

    /// The private half.
    pub fn private(&self) -> &RsaPrivateKey {
        &self.private
    }

    /// Consumes the pair and returns the private key (which still carries the
    /// public key).
    pub fn into_private(self) -> RsaPrivateKey {
        self.private
    }

    /// Wraps a restored private key back into a pair.
    pub fn from_private(private: RsaPrivateKey) -> Self {
        RsaKeyPair { private }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed_cafe)
    }

    fn small_pair() -> RsaKeyPair {
        RsaKeyPair::generate(256, &mut rng())
    }

    #[test]
    fn generated_modulus_has_requested_size() {
        let pair = small_pair();
        assert_eq!(pair.public().modulus_bits(), 256);
        assert_eq!(pair.public().modulus_bytes(), 32);
        assert_eq!(pair.public().exponent().to_u64(), Some(PUBLIC_EXPONENT));
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let pair = small_pair();
        let m = BigUint::from_u64(0x1234_5678_9abc_def0);
        let c = pair.public().rsaep(&m).unwrap();
        assert_ne!(c, m);
        assert_eq!(pair.private().rsadp(&c).unwrap(), m);
    }

    #[test]
    fn sign_verify_primitive_roundtrip() {
        // RSASP1 = RSADP, RSAVP1 = RSAEP: applying private then public
        // recovers the representative.
        let pair = small_pair();
        let m = BigUint::from_u64(0xdead_beef);
        let s = pair.private().rsadp(&m).unwrap();
        assert_eq!(pair.public().rsaep(&s).unwrap(), m);
    }

    #[test]
    fn octet_string_roundtrip() {
        let pair = small_pair();
        let msg = vec![0x01u8; 31]; // shorter than modulus
        let ct = pair.public().encrypt_os(&msg).unwrap();
        assert_eq!(ct.len(), 32);
        let pt = pair.private().decrypt_os(&ct).unwrap();
        assert_eq!(&pt[pt.len() - 31..], &msg[..]);
    }

    #[test]
    fn out_of_range_rejected() {
        let pair = small_pair();
        let too_big = pair.public().modulus().clone();
        assert_eq!(
            pair.public().rsaep(&too_big),
            Err(CryptoError::MessageRepresentativeOutOfRange)
        );
        assert_eq!(
            pair.private().rsadp(&too_big),
            Err(CryptoError::MessageRepresentativeOutOfRange)
        );
    }

    #[test]
    fn distinct_keys_from_distinct_seeds() {
        let a = RsaKeyPair::generate(256, &mut StdRng::seed_from_u64(1));
        let b = RsaKeyPair::generate(256, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.public().modulus(), b.public().modulus());
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let pair = small_pair();
        let m = BigUint::from_u64(42);
        let plain = m.modpow(&pair.private().d, pair.public().modulus());
        let crt = pair.private().rsadp(&m).unwrap();
        assert_eq!(plain, crt);
    }

    #[test]
    fn component_roundtrip_restores_an_equal_key() {
        let pair = small_pair();
        let (p, q) = pair.private().primes();
        let restored = RsaPrivateKey::from_components(
            pair.public().clone(),
            pair.private().d().clone(),
            p.clone(),
            q.clone(),
        )
        .unwrap();
        assert_eq!(&restored, pair.private(), "CRT parameters recomputed");
        // Inconsistent components are rejected, not mis-restored.
        let other = RsaKeyPair::generate(256, &mut StdRng::seed_from_u64(99));
        assert_eq!(
            RsaPrivateKey::from_components(
                other.public().clone(),
                pair.private().d().clone(),
                p.clone(),
                q.clone(),
            ),
            Err(CryptoError::InvalidKeyComponents)
        );
    }

    #[test]
    fn warm_context_invisible_to_equality_and_shared_by_clones() {
        let pair = small_pair();
        let cold = pair.private().clone();
        pair.private().precompute();
        pair.private().precompute(); // idempotent
        assert_eq!(&cold, pair.private(), "cache state must not affect Eq");
        let warm_clone = pair.private().clone();
        let m = BigUint::from_u64(0x0123_4567);
        let c = pair.public().rsaep(&m).unwrap();
        assert_eq!(warm_clone.rsadp(&c).unwrap(), m);
        assert_eq!(cold.rsadp(&c).unwrap(), m);
    }

    #[test]
    fn repeated_operations_through_the_cache_stay_byte_identical() {
        let pair = small_pair();
        let msg = vec![0x42u8; 31];
        let first_ct = pair.public().encrypt_os(&msg).unwrap();
        let first_pt = pair.private().decrypt_os(&first_ct).unwrap();
        for _ in 0..3 {
            assert_eq!(pair.public().encrypt_os(&msg).unwrap(), first_ct);
            assert_eq!(pair.private().decrypt_os(&first_ct).unwrap(), first_pt);
        }
    }

    #[test]
    fn debug_hides_private_material() {
        let pair = small_pair();
        let s = format!("{:?}", pair.private());
        assert!(s.contains("modulus_bits"));
        assert!(!s.contains("qinv"));
    }

    #[test]
    fn thousand_bit_keygen_smoke() {
        // The real OMA size; kept as a single smoke test because it is the
        // slowest operation in the suite.
        let pair = RsaKeyPair::generate_default(&mut rng());
        assert_eq!(pair.public().modulus_bits(), 1024);
        let m = BigUint::from_u64(7777);
        let c = pair.public().rsaep(&m).unwrap();
        assert_eq!(pair.private().rsadp(&c).unwrap(), m);
    }
}
