//! The AES-128 block cipher (FIPS 197).
//!
//! Only the 128-bit key size is implemented because it is the one mandated
//! by OMA DRM 2 for both content encryption (AES-CBC) and key wrapping
//! (AES-WRAP). The S-box and its inverse are computed at construction time
//! from the GF(2⁸) inverse and the affine transform rather than hard-coded,
//! and the implementation is validated against the FIPS 197 and NIST SP
//! 800-38A test vectors in the unit tests.

/// Block size of AES in bytes.
pub const BLOCK_SIZE: usize = 16;

/// Key size of AES-128 in bytes.
pub const KEY_SIZE: usize = 16;

/// Number of rounds for AES-128.
const ROUNDS: usize = 10;

/// An AES-128 block cipher instance with an expanded key schedule.
///
/// # Example
///
/// ```
/// use oma_crypto::aes::Aes128;
///
/// let key = [0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
///            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c];
/// let cipher = Aes128::new(&key);
/// let plain = *b"theblockis16byte";
/// let ct = cipher.encrypt_block(&plain);
/// assert_eq!(cipher.decrypt_block(&ct), plain);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys: 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").field("rounds", &ROUNDS).finish()
    }
}

/// The AES S-box and inverse S-box, computed once.
struct SBoxes {
    forward: [u8; 256],
    inverse: [u8; 256],
}

fn sboxes() -> &'static SBoxes {
    use std::sync::OnceLock;
    static SBOXES: OnceLock<SBoxes> = OnceLock::new();
    SBOXES.get_or_init(|| {
        let mut forward = [0u8; 256];
        let mut inverse = [0u8; 256];
        for x in 0u16..256 {
            let x = x as u8;
            let inv = if x == 0 { 0 } else { gf_inverse(x) };
            // Affine transform: b ^= rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
            let mut b = inv;
            let mut res = inv;
            for _ in 0..4 {
                b = b.rotate_left(1);
                res ^= b;
            }
            res ^= 0x63;
            forward[x as usize] = res;
            inverse[res as usize] = x;
        }
        SBoxes { forward, inverse }
    })
}

/// Multiplication in GF(2⁸) with the AES reduction polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸) by exponentiation (a²⁵⁴).
fn gf_inverse(a: u8) -> u8 {
    debug_assert_ne!(a, 0);
    // a^254 = a^-1 in GF(2^8)*
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u8;
    while exp > 0 {
        if exp & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

impl Aes128 {
    /// Expands `key` into the round-key schedule.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not exactly 16 bytes; use
    /// [`Aes128::try_new`] for a fallible constructor.
    pub fn new(key: &[u8]) -> Self {
        Self::try_new(key).expect("AES-128 key must be 16 bytes")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::InvalidKeyLength`] if `key` is not 16 bytes.
    pub fn try_new(key: &[u8]) -> Result<Self, crate::CryptoError> {
        if key.len() != KEY_SIZE {
            return Err(crate::CryptoError::InvalidKeyLength {
                expected: KEY_SIZE,
                actual: key.len(),
            });
        }
        let sbox = &sboxes().forward;
        // Key expansion into 44 words.
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let rcon: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for byte in &mut temp {
                    *byte = sbox[*byte as usize];
                }
                temp[0] ^= rcon[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Ok(Aes128 { round_keys })
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        let sbox = &sboxes().forward;
        for b in state.iter_mut() {
            *b = sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let sbox = &sboxes().inverse;
        for b in state.iter_mut() {
            *b = sbox[*b as usize];
        }
    }

    /// State layout: `state[4*c + r]` is row `r`, column `c`
    /// (i.e. bytes are stored column-major exactly as the block bytes).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = s[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * ((c + r) % 4) + r] = s[4 * c + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[4 * c + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[4 * c + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[4 * c + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            Self::inv_shift_rows(&mut state);
            Self::inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_values() {
        let sb = &sboxes().forward;
        assert_eq!(sb[0x00], 0x63);
        assert_eq!(sb[0x01], 0x7c);
        assert_eq!(sb[0x53], 0xed);
        assert_eq!(sb[0xff], 0x16);
        let inv = &sboxes().inverse;
        assert_eq!(inv[0x63], 0x00);
        assert_eq!(inv[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let sb = &sboxes().forward;
        let mut seen = [false; 256];
        for &v in sb.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        let inv = &sboxes().inverse;
        for x in 0..256 {
            assert_eq!(inv[sb[x] as usize] as usize, x);
        }
    }

    #[test]
    fn gf_mul_known_products() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(0x02, 0x80), 0x1b);
    }

    #[test]
    fn gf_inverse_roundtrip() {
        for x in 1u16..256 {
            let x = x as u8;
            assert_eq!(gf_mul(x, gf_inverse(x)), 1, "x={x:#x}");
        }
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let plain = hex("3243f6a8885a308d313198a2e0370734");
        let expected = hex("3925841d02dc09fbdc118597196a0b32");
        let cipher = Aes128::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&plain);
        assert_eq!(cipher.encrypt_block(&block).to_vec(), expected);
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let plain = hex("00112233445566778899aabbccddeeff");
        let expected = hex("69c4e0d86a7b0430d8cdb78070b4c55a");
        let cipher = Aes128::new(&key);
        let mut block = [0u8; 16];
        block.copy_from_slice(&plain);
        let ct = cipher.encrypt_block(&block);
        assert_eq!(ct.to_vec(), expected);
        assert_eq!(cipher.decrypt_block(&ct), block);
    }

    #[test]
    fn sp800_38a_ecb_vectors() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let cipher = Aes128::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "3ad77bb40d7a3660a89ecaf32466ef97",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "f5d3d58503b9699de785895a96fdbaaf",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "43b1cd7f598ece23881b00e3ed030688",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "7b0c785e27e8ad3f8223207104725dd4",
            ),
        ];
        for (p, c) in cases {
            let mut block = [0u8; 16];
            block.copy_from_slice(&hex(p));
            assert_eq!(cipher.encrypt_block(&block).to_vec(), hex(c));
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_random_blocks() {
        use rand::RngCore;
        let mut rng = rand::thread_rng();
        let mut key = [0u8; 16];
        rng.fill_bytes(&mut key);
        let cipher = Aes128::new(&key);
        for _ in 0..64 {
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut block);
            assert_eq!(cipher.decrypt_block(&cipher.encrypt_block(&block)), block);
        }
    }

    #[test]
    fn wrong_key_length_rejected() {
        assert!(Aes128::try_new(&[0u8; 15]).is_err());
        assert!(Aes128::try_new(&[0u8; 17]).is_err());
        assert!(Aes128::try_new(&[0u8; 16]).is_ok());
    }

    #[test]
    fn debug_does_not_leak_key() {
        let cipher = Aes128::new(&[7u8; 16]);
        let s = format!("{cipher:?}");
        assert!(!s.contains('7') || !s.contains("round_keys"));
        assert!(s.contains("Aes128"));
    }
}
