//! The AES Key Wrap algorithm (RFC 3394), called "AES-WRAP" by OMA DRM 2.
//!
//! Key wrapping is used twice in the standard: the Rights Issuer wraps
//! `K_MAC ‖ K_REK` under the KDF2-derived KEK to form `C2`, and the DRM
//! Agent re-wraps the same keys under its device key `K_DEV` at installation
//! time to form `C2dev` (Figure 3 of the paper).

use crate::aes::BLOCK_SIZE;
use crate::backend::{AesDirection, CryptoBackend, Unmetered};
use crate::CryptoError;

/// The default initial value from RFC 3394 §2.2.3.
pub const DEFAULT_IV: [u8; 8] = [0xa6; 8];

/// Wraps `key_data` (a multiple of 8 bytes, at least 16) under `kek`.
///
/// The output is 8 bytes longer than the input.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidKeyLength`] for a KEK that is not 16 bytes,
/// and [`CryptoError::InvalidInputLength`] when the key data is shorter than
/// 16 bytes or not a multiple of 8.
///
/// # Example
///
/// ```
/// use oma_crypto::keywrap;
/// # fn main() -> Result<(), oma_crypto::CryptoError> {
/// let kek = [0u8; 16];
/// let keys = [0x11u8; 32]; // K_MAC || K_REK
/// let wrapped = keywrap::wrap(&kek, &keys)?;
/// assert_eq!(wrapped.len(), 40);
/// assert_eq!(keywrap::unwrap(&kek, &wrapped)?, keys);
/// # Ok(()) }
/// ```
pub fn wrap(kek: &[u8], key_data: &[u8]) -> Result<Vec<u8>, CryptoError> {
    wrap_with(&Unmetered, kek, key_data)
}

/// [`wrap`] routed through a [`CryptoBackend`]: one key schedule plus the
/// real 6·n block-cipher invocations run (and are charged) on the backend.
///
/// # Errors
///
/// Same as [`wrap`].
pub fn wrap_with(
    backend: &dyn CryptoBackend,
    kek: &[u8],
    key_data: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let cipher = backend.aes_schedule(kek, AesDirection::Encrypt)?;
    if key_data.len() < 16 || !key_data.len().is_multiple_of(8) {
        return Err(CryptoError::InvalidInputLength {
            expected: "key data of >= 16 bytes, multiple of 8",
            actual: key_data.len(),
        });
    }
    let n = key_data.len() / 8;
    let mut a = DEFAULT_IV;
    let mut r: Vec<[u8; 8]> = key_data
        .chunks_exact(8)
        .map(|c| {
            let mut block = [0u8; 8];
            block.copy_from_slice(c);
            block
        })
        .collect();

    for j in 0..6u64 {
        for (i, ri) in r.iter_mut().enumerate() {
            let mut block = [0u8; BLOCK_SIZE];
            block[..8].copy_from_slice(&a);
            block[8..].copy_from_slice(ri);
            let b = backend.aes_encrypt_block(&cipher, &block);
            let t = (n as u64) * j + (i as u64 + 1);
            a.copy_from_slice(&b[..8]);
            for (k, byte) in t.to_be_bytes().iter().enumerate() {
                a[k] ^= byte;
            }
            ri.copy_from_slice(&b[8..]);
        }
    }

    let mut out = Vec::with_capacity(key_data.len() + 8);
    out.extend_from_slice(&a);
    for block in &r {
        out.extend_from_slice(block);
    }
    Ok(out)
}

/// Unwraps `wrapped` (produced by [`wrap`]) under `kek` and checks the
/// RFC 3394 integrity value.
///
/// # Errors
///
/// Returns [`CryptoError::KeyUnwrapIntegrity`] when the integrity check
/// fails — the symptom of a wrong KEK or tampered wrapped data — plus the
/// same input-validation errors as [`wrap`].
pub fn unwrap(kek: &[u8], wrapped: &[u8]) -> Result<Vec<u8>, CryptoError> {
    unwrap_with(&Unmetered, kek, wrapped)
}

/// [`unwrap`] routed through a [`CryptoBackend`].
///
/// # Errors
///
/// Same as [`unwrap`].
pub fn unwrap_with(
    backend: &dyn CryptoBackend,
    kek: &[u8],
    wrapped: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let cipher = backend.aes_schedule(kek, AesDirection::Decrypt)?;
    if wrapped.len() < 24 || !wrapped.len().is_multiple_of(8) {
        return Err(CryptoError::InvalidInputLength {
            expected: "wrapped data of >= 24 bytes, multiple of 8",
            actual: wrapped.len(),
        });
    }
    let n = wrapped.len() / 8 - 1;
    let mut a = [0u8; 8];
    a.copy_from_slice(&wrapped[..8]);
    let mut r: Vec<[u8; 8]> = wrapped[8..]
        .chunks_exact(8)
        .map(|c| {
            let mut block = [0u8; 8];
            block.copy_from_slice(c);
            block
        })
        .collect();

    for j in (0..6u64).rev() {
        for i in (0..n).rev() {
            let t = (n as u64) * j + (i as u64 + 1);
            let mut a_x = a;
            for (k, byte) in t.to_be_bytes().iter().enumerate() {
                a_x[k] ^= byte;
            }
            let mut block = [0u8; BLOCK_SIZE];
            block[..8].copy_from_slice(&a_x);
            block[8..].copy_from_slice(&r[i]);
            let b = backend.aes_decrypt_block(&cipher, &block);
            a.copy_from_slice(&b[..8]);
            r[i].copy_from_slice(&b[8..]);
        }
    }

    if a != DEFAULT_IV {
        return Err(CryptoError::KeyUnwrapIntegrity);
    }
    let mut out = Vec::with_capacity(n * 8);
    for block in &r {
        out.extend_from_slice(block);
    }
    Ok(out)
}

/// Number of AES block-cipher invocations performed when wrapping or
/// unwrapping `key_data_len` bytes of key material (6 per 64-bit block,
/// per RFC 3394).
pub fn block_operations(key_data_len: usize) -> u64 {
    6 * (key_data_len / 8) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc3394_128bit_key_128bit_kek() {
        let kek = hex("000102030405060708090a0b0c0d0e0f");
        let key_data = hex("00112233445566778899aabbccddeeff");
        let expected = hex("1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5");
        let wrapped = wrap(&kek, &key_data).unwrap();
        assert_eq!(wrapped, expected);
        assert_eq!(unwrap(&kek, &wrapped).unwrap(), key_data);
    }

    #[test]
    fn wrap_256_bits_of_key_material() {
        // The OMA DRM case: K_MAC || K_REK is 32 bytes, C2 is 40 bytes.
        let kek = [0x55u8; 16];
        let keys = [0xabu8; 32];
        let wrapped = wrap(&kek, &keys).unwrap();
        assert_eq!(wrapped.len(), 40);
        assert_eq!(unwrap(&kek, &wrapped).unwrap(), keys);
    }

    #[test]
    fn wrong_kek_detected() {
        let wrapped = wrap(&[1u8; 16], &[9u8; 32]).unwrap();
        assert_eq!(
            unwrap(&[2u8; 16], &wrapped),
            Err(CryptoError::KeyUnwrapIntegrity)
        );
    }

    #[test]
    fn tampered_data_detected() {
        let mut wrapped = wrap(&[1u8; 16], &[9u8; 32]).unwrap();
        wrapped[12] ^= 0x80;
        assert_eq!(
            unwrap(&[1u8; 16], &wrapped),
            Err(CryptoError::KeyUnwrapIntegrity)
        );
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert!(wrap(&[0u8; 16], &[0u8; 8]).is_err()); // too short
        assert!(wrap(&[0u8; 16], &[0u8; 20]).is_err()); // not multiple of 8
        assert!(wrap(&[0u8; 8], &[0u8; 16]).is_err()); // bad kek
        assert!(unwrap(&[0u8; 16], &[0u8; 16]).is_err()); // too short
        assert!(unwrap(&[0u8; 16], &[0u8; 25]).is_err()); // not multiple of 8
    }

    #[test]
    fn block_operation_count() {
        assert_eq!(block_operations(16), 12);
        assert_eq!(block_operations(32), 24);
    }

    #[test]
    fn roundtrip_various_sizes() {
        let kek = [0x77u8; 16];
        for blocks in [2usize, 3, 4, 8, 16] {
            let data: Vec<u8> = (0..blocks * 8).map(|i| i as u8).collect();
            let wrapped = wrap(&kek, &data).unwrap();
            assert_eq!(wrapped.len(), data.len() + 8);
            assert_eq!(unwrap(&kek, &wrapped).unwrap(), data);
        }
    }
}
