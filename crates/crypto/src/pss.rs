//! The RSASSA-PSS signature scheme (PKCS#1 v2.1) with SHA-1 and MGF1-SHA-1,
//! used by OMA DRM 2 for every ROAP message signature and for Rights Object
//! signatures.
//!
//! The full EMSA-PSS encoding is implemented (salted hash, MGF1 data-block
//! masking, trailer byte `0xbc`). Note that the *performance model* in
//! `oma-perf` follows the paper and approximates the encoding cost as a
//! single hash over the message plus one RSA private/public operation; the
//! small MGF1 hashes are treated as part of that approximation.

use crate::backend::{CryptoBackend, Unmetered};
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha1::{sha1, Sha1, DIGEST_SIZE};
use crate::CryptoError;
use oma_bignum::BigUint;
use rand::RngCore;

/// Salt length used for EMSA-PSS (equal to the SHA-1 digest size, the
/// conventional choice).
pub const SALT_LEN: usize = DIGEST_SIZE;

/// A detached RSA-PSS signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PssSignature {
    bytes: Vec<u8>,
}

impl PssSignature {
    /// Wraps raw signature bytes (used when deserialising messages).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        PssSignature { bytes }
    }

    /// The raw signature octets.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the signature in bytes (equals the modulus size).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the signature is empty (never true for a real signature).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// MGF1 mask generation with SHA-1.
///
/// The seed is absorbed into a SHA-1 prefix state once; each counter block
/// clones that state and appends only the 4 counter bytes, instead of
/// re-hashing `seed || counter` from scratch per block.
fn mgf1(seed: &[u8], len: usize) -> Vec<u8> {
    let mut seeded = Sha1::new();
    seeded.update(seed);
    let mut mask = Vec::with_capacity(len.next_multiple_of(DIGEST_SIZE));
    let mut counter: u32 = 0;
    while mask.len() < len {
        let mut block = seeded.clone();
        block.update(&counter.to_be_bytes());
        mask.extend_from_slice(&block.finalize());
        counter += 1;
    }
    mask.truncate(len);
    mask
}

/// EMSA-PSS-ENCODE (RFC 3447 §9.1.1) with SHA-1, producing `em_bits` bits.
///
/// Takes the pre-computed message hash so callers can route the (potentially
/// large) message hashing through a backend while the small MGF1 hashes stay
/// on the core — the paper's approximation of the encoding cost.
fn emsa_pss_encode(
    m_hash: &[u8; DIGEST_SIZE],
    salt: &[u8],
    em_bits: usize,
) -> Result<Vec<u8>, CryptoError> {
    let em_len = em_bits.div_ceil(8);
    let h_len = DIGEST_SIZE;
    let s_len = salt.len();
    if em_len < h_len + s_len + 2 {
        return Err(CryptoError::KeyTooSmall);
    }
    // M' = (0x)00 00 00 00 00 00 00 00 || mHash || salt
    let mut m_prime = vec![0u8; 8];
    m_prime.extend_from_slice(m_hash);
    m_prime.extend_from_slice(salt);
    let h = sha1(&m_prime);
    // DB = PS || 0x01 || salt
    let ps_len = em_len - s_len - h_len - 2;
    let mut db = vec![0u8; ps_len];
    db.push(0x01);
    db.extend_from_slice(salt);
    // maskedDB = DB xor MGF1(H, emLen - hLen - 1)
    let db_mask = mgf1(&h, em_len - h_len - 1);
    let mut masked_db: Vec<u8> = db.iter().zip(db_mask.iter()).map(|(a, b)| a ^ b).collect();
    // Clear the leftmost 8*emLen - emBits bits.
    let excess_bits = 8 * em_len - em_bits;
    if excess_bits > 0 {
        masked_db[0] &= 0xffu8 >> excess_bits;
    }
    let mut em = masked_db;
    em.extend_from_slice(&h);
    em.push(0xbc);
    Ok(em)
}

/// EMSA-PSS-VERIFY (RFC 3447 §9.1.2), from the pre-computed message hash.
fn emsa_pss_verify(m_hash: &[u8; DIGEST_SIZE], em: &[u8], em_bits: usize, s_len: usize) -> bool {
    let em_len = em_bits.div_ceil(8);
    let h_len = DIGEST_SIZE;
    if em.len() != em_len || em_len < h_len + s_len + 2 {
        return false;
    }
    if em[em_len - 1] != 0xbc {
        return false;
    }
    let masked_db = &em[..em_len - h_len - 1];
    let h = &em[em_len - h_len - 1..em_len - 1];
    let excess_bits = 8 * em_len - em_bits;
    if excess_bits > 0 && masked_db[0] & !(0xffu8 >> excess_bits) != 0 {
        return false;
    }
    let db_mask = mgf1(h, em_len - h_len - 1);
    let mut db: Vec<u8> = masked_db
        .iter()
        .zip(db_mask.iter())
        .map(|(a, b)| a ^ b)
        .collect();
    if excess_bits > 0 {
        db[0] &= 0xffu8 >> excess_bits;
    }
    let ps_len = em_len - h_len - s_len - 2;
    if !db[..ps_len].iter().all(|&b| b == 0) || db[ps_len] != 0x01 {
        return false;
    }
    let salt = &db[ps_len + 1..];
    let mut m_prime = vec![0u8; 8];
    m_prime.extend_from_slice(m_hash);
    m_prime.extend_from_slice(salt);
    let h_prime = sha1(&m_prime);
    h_prime[..] == *h
}

/// Signs `message` with RSA-PSS under `key`, drawing the salt from `rng`.
///
/// # Errors
///
/// Returns [`CryptoError::KeyTooSmall`] if the modulus cannot hold the
/// EMSA-PSS encoding (needs at least `8·(2·20 + 2) + 1` bits).
///
/// # Example
///
/// ```
/// use oma_crypto::{pss, rsa::RsaKeyPair};
/// use rand::SeedableRng;
/// # fn main() -> Result<(), oma_crypto::CryptoError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let pair = RsaKeyPair::generate(512, &mut rng);
/// let sig = pss::sign(pair.private(), b"registration request", &mut rng)?;
/// assert!(pss::verify(pair.public(), b"registration request", &sig));
/// assert!(!pss::verify(pair.public(), b"tampered", &sig));
/// # Ok(()) }
/// ```
pub fn sign<R: RngCore + ?Sized>(
    key: &RsaPrivateKey,
    message: &[u8],
    rng: &mut R,
) -> Result<PssSignature, CryptoError> {
    sign_with(&Unmetered, key, message, rng)
}

/// [`sign`] routed through a [`CryptoBackend`]: the message hash and the RSA
/// private-key exponentiation run (and are charged) on the backend, while the
/// small MGF1 hashes stay on the core — exactly the paper's approximation of
/// the EMSA-PSS cost as "one hash plus one private-key operation".
///
/// # Errors
///
/// Same as [`sign`].
pub fn sign_with<R: RngCore + ?Sized>(
    backend: &dyn CryptoBackend,
    key: &RsaPrivateKey,
    message: &[u8],
    rng: &mut R,
) -> Result<PssSignature, CryptoError> {
    let mod_bits = key.public().modulus_bits();
    let em_bits = mod_bits - 1;
    let mut salt = [0u8; SALT_LEN];
    rng.fill_bytes(&mut salt);
    let m_hash = backend.sha1(message);
    let em = emsa_pss_encode(&m_hash, &salt, em_bits)?;
    let m = BigUint::from_bytes_be(&em);
    let s = backend.rsa_private_exp(key, &m)?;
    let bytes = s
        .to_bytes_be_padded(key.public().modulus_bytes())
        .ok_or(CryptoError::MessageRepresentativeOutOfRange)?;
    Ok(PssSignature { bytes })
}

/// Verifies an RSA-PSS signature over `message`.
pub fn verify(key: &RsaPublicKey, message: &[u8], signature: &PssSignature) -> bool {
    verify_with(&Unmetered, key, message, signature)
}

/// [`verify`] routed through a [`CryptoBackend`] (one backend hash of the
/// message plus one backend public-key exponentiation).
pub fn verify_with(
    backend: &dyn CryptoBackend,
    key: &RsaPublicKey,
    message: &[u8],
    signature: &PssSignature,
) -> bool {
    if signature.bytes.len() != key.modulus_bytes() {
        return false;
    }
    let s = BigUint::from_bytes_be(&signature.bytes);
    let m = match backend.rsa_public_exp(key, &s) {
        Ok(m) => m,
        Err(_) => return false,
    };
    let em_bits = key.modulus_bits() - 1;
    let em_len = em_bits.div_ceil(8);
    let em = match m.to_bytes_be_padded(em_len) {
        Some(em) => em,
        None => return false,
    };
    let m_hash = backend.sha1(message);
    emsa_pss_verify(&m_hash, &em, em_bits, SALT_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(99))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(1);
        let sig = sign(pair.private(), b"hello", &mut rng).unwrap();
        assert_eq!(sig.len(), 64);
        assert!(!sig.is_empty());
        assert!(verify(pair.public(), b"hello", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(2);
        let sig = sign(pair.private(), b"original", &mut rng).unwrap();
        assert!(!verify(pair.public(), b"Original", &sig));
        assert!(!verify(pair.public(), b"", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(3);
        let sig = sign(pair.private(), b"message", &mut rng).unwrap();
        let mut bytes = sig.as_bytes().to_vec();
        bytes[10] ^= 0x40;
        assert!(!verify(
            pair.public(),
            b"message",
            &PssSignature::from_bytes(bytes)
        ));
        assert!(!verify(
            pair.public(),
            b"message",
            &PssSignature::from_bytes(vec![0u8; 10])
        ));
    }

    #[test]
    fn wrong_key_rejected() {
        let pair_a = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(4));
        let pair_b = RsaKeyPair::generate(512, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(6);
        let sig = sign(pair_a.private(), b"msg", &mut rng).unwrap();
        assert!(!verify(pair_b.public(), b"msg", &sig));
    }

    #[test]
    fn signatures_are_randomised_but_both_verify() {
        let pair = pair();
        let mut rng = StdRng::seed_from_u64(7);
        let s1 = sign(pair.private(), b"m", &mut rng).unwrap();
        let s2 = sign(pair.private(), b"m", &mut rng).unwrap();
        assert_ne!(s1, s2, "PSS is salted, signatures should differ");
        assert!(verify(pair.public(), b"m", &s1));
        assert!(verify(pair.public(), b"m", &s2));
    }

    #[test]
    fn key_too_small_is_an_error() {
        let tiny = RsaKeyPair::generate(128, &mut StdRng::seed_from_u64(8));
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            sign(tiny.private(), b"m", &mut rng),
            Err(CryptoError::KeyTooSmall)
        );
    }

    #[test]
    fn mgf1_expands_deterministically() {
        let a = mgf1(b"seed", 48);
        let b = mgf1(b"seed", 48);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        assert_eq!(&mgf1(b"seed", 20)[..], &a[..20]);
        assert_ne!(mgf1(b"seed", 48), mgf1(b"seee", 48));
    }

    #[test]
    fn emsa_pss_encode_verify_consistency() {
        let em = emsa_pss_encode(&sha1(b"payload"), &[7u8; SALT_LEN], 511).unwrap();
        assert!(emsa_pss_verify(&sha1(b"payload"), &em, 511, SALT_LEN));
        assert!(!emsa_pss_verify(&sha1(b"other"), &em, 511, SALT_LEN));
    }

    #[test]
    fn backend_routed_signing_is_byte_identical() {
        use crate::backend::{HwMacroBackend, SoftwareBackend};
        let pair = pair();
        let sign_under = |backend: &dyn crate::backend::CryptoBackend| {
            let mut rng = StdRng::seed_from_u64(21);
            sign_with(backend, pair.private(), b"roap message", &mut rng).unwrap()
        };
        let plain = {
            let mut rng = StdRng::seed_from_u64(21);
            sign(pair.private(), b"roap message", &mut rng).unwrap()
        };
        let sw = sign_under(&SoftwareBackend::new());
        let hw = sign_under(&HwMacroBackend::full());
        assert_eq!(plain, sw);
        assert_eq!(plain, hw);
        assert!(verify_with(
            &HwMacroBackend::hybrid(),
            pair.public(),
            b"roap message",
            &hw
        ));
    }
}
