//! Per-request span tracing: a bounded ring buffer of dispatch records.
//!
//! Every served frame can deposit one [`Span`] — which session, which
//! device, which PDU kind, and where its wall-clock went (queue wait vs
//! dispatch vs write-back) plus the crypto cycles it charged. The ring
//! holds the most recent `capacity` spans in fixed memory; recording
//! never blocks the serving thread: a slot is claimed with an atomic
//! ticket and written under a `try_lock` — if a reader (or a lapping
//! writer) holds the slot at that instant, the span is counted in
//! [`SpanRecorder::dropped`] instead of stalling the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One served request, with its identity and time breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Monotone ticket assigned by the recorder (global dispatch order).
    pub seq: u64,
    /// The ROAP envelope's session id (0 for session-less PDUs).
    pub session_id: u64,
    /// The requesting device, when the PDU carries one (best effort).
    pub device_id: String,
    /// The PDU kind name (e.g. `"RegistrationRequest"`).
    pub kind: &'static str,
    /// Time spent in the accept→worker hand-off queue, if any.
    pub queue_wait_nanos: u64,
    /// Time inside `RiService` dispatch (decode, handle, encode).
    pub dispatch_nanos: u64,
    /// Time writing the response back to the peer.
    pub write_nanos: u64,
    /// Crypto cycles charged while this frame dispatched (best effort —
    /// under concurrent dispatch the meter delta may include neighbours).
    pub cycles: u64,
}

impl Span {
    /// A zeroed span for `kind` — callers fill in what they measured.
    pub fn new(kind: &'static str) -> Self {
        Span {
            seq: 0,
            session_id: 0,
            device_id: String::new(),
            kind,
            queue_wait_nanos: 0,
            dispatch_nanos: 0,
            write_nanos: 0,
            cycles: 0,
        }
    }

    /// The span as one JSON object (the JSONL line, without newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"session_id\":{},\"device_id\":\"{}\",\"kind\":\"{}\",\"queue_wait_nanos\":{},\"dispatch_nanos\":{},\"write_nanos\":{},\"cycles\":{}}}",
            self.seq,
            self.session_id,
            escape(&self.device_id),
            escape(self.kind),
            self.queue_wait_nanos,
            self.dispatch_nanos,
            self.write_nanos,
            self.cycles,
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring buffer of the most recent [`Span`]s.
///
/// Fixed memory, multi-producer, non-blocking: see the module docs for
/// the claim/`try_lock` protocol.
pub struct SpanRecorder {
    slots: Vec<Mutex<Option<Span>>>,
    ticket: AtomicU64,
    dropped: AtomicU64,
}

impl SpanRecorder {
    /// A ring holding the most recent `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            ticket: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots (the ring's fixed capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Deposits a span, overwriting the oldest. Never blocks: a
    /// contended slot drops the span instead (counted in `dropped`).
    pub fn record(&self, mut span: Span) {
        let seq = self.ticket.fetch_add(1, Ordering::Relaxed);
        span.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some(span),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total spans ever offered to the ring.
    pub fn recorded(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
    }

    /// Spans lost to slot contention (not to ring overwrite).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().ok().and_then(|guard| guard.clone()))
            .collect();
        spans.sort_by_key(|span| span.seq);
        spans
    }

    /// The retained spans as JSONL (one object per line, oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: &'static str, session: u64) -> Span {
        Span {
            session_id: session,
            device_id: format!("phone-{session:03}"),
            dispatch_nanos: 10 * session,
            ..Span::new(kind)
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_spans_in_order() {
        let ring = SpanRecorder::new(4);
        for i in 0..10 {
            ring.record(span("DeviceHello", i));
        }
        let spans = ring.spans();
        assert_eq!(spans.len(), 4);
        let sessions: Vec<u64> = spans.iter().map(|s| s.session_id).collect();
        assert_eq!(sessions, vec![6, 7, 8, 9]);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn jsonl_lines_parse_shape() {
        let ring = SpanRecorder::new(8);
        ring.record(span("RoRequest", 3));
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\":\"RoRequest\""));
        assert!(line.contains("\"device_id\":\"phone-003\""));
        assert!(line.contains("\"dispatch_nanos\":30"));
    }

    #[test]
    fn device_ids_are_json_escaped() {
        let mut s = Span::new("DeviceHello");
        s.device_id = "we\"ird\\id\n".to_string();
        assert!(s.to_json().contains("we\\\"ird\\\\id\\n"));
    }

    #[test]
    fn concurrent_recording_never_loses_more_than_contended_slots() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRecorder::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000 {
                    ring.record(span("RoRequest", t * 10_000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8_000);
        // Whatever survived is bounded by the ring and in ticket order.
        let spans = ring.spans();
        assert!(spans.len() <= 64);
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
