//! The Prometheus-style text exposition.
//!
//! Deterministic by construction: metrics render in name order (the
//! registry keeps a sorted map), histogram bucket lines appear in
//! ascending bound order, and no timestamps are emitted — the same
//! registry state always renders the same bytes. That determinism is
//! what lets a committed golden vector (`tests/golden/obs_exposition.txt`)
//! guard the format against accidental drift.
//!
//! Format, per metric kind:
//!
//! ```text
//! # TYPE net_shed_total counter
//! net_shed_total 3
//! # TYPE net_active gauge
//! net_active 2
//! # TYPE net_frame_nanos histogram
//! net_frame_nanos_bucket{le="15"} 4        <- cumulative, non-empty buckets only
//! net_frame_nanos_bucket{le="+Inf"} 9
//! net_frame_nanos_sum 12345
//! net_frame_nanos_count 9
//! # net_frame_nanos p50=.. p95=.. p99=.. p999=.. min=.. max=..
//! ```
//!
//! The quantile summary rides in a comment line so scrapers that speak
//! strict Prometheus text format ignore it while humans (and our bench
//! harness) still get p50/p95/p99/p999 at a glance.

use crate::{Metric, Registry};
use std::fmt::Write as _;

/// Renders every registered metric. See the module docs for the format.
pub fn render_text(registry: &Registry) -> String {
    let mut out = String::new();
    registry.for_each(|name, metric| match metric {
        Metric::Counter(c) => {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.get());
        }
        Metric::Gauge(g) => {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.get());
        }
        Metric::Histogram(h) => {
            let snap = h.snapshot();
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bound, count) in snap.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count());
            let _ = writeln!(out, "{name}_sum {}", snap.sum());
            let _ = writeln!(out, "{name}_count {}", snap.count());
            let [p50, p95, p99, p999] = snap.percentiles();
            let _ = writeln!(
                out,
                "# {name} p50={p50} p95={p95} p99={p99} p999={p999} min={} max={}",
                snap.min(),
                snap.max()
            );
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_name_sorted() {
        let r = Registry::new();
        r.gauge("z_active").set(2);
        r.counter("a_total").add(7);
        let h = r.histogram("m_nanos");
        h.record(5);
        h.record(100);
        let once = render_text(&r);
        assert_eq!(once, render_text(&r));
        let a = once.find("a_total").unwrap();
        let m = once.find("m_nanos").unwrap();
        let z = once.find("z_active").unwrap();
        assert!(a < m && m < z, "metrics must render in name order");
        assert!(once.contains("a_total 7\n"));
        assert!(once.contains("z_active 2\n"));
        assert!(once.contains("m_nanos_count 2\n"));
        assert!(once.contains("m_nanos_bucket{le=\"+Inf\"} 2\n"));
    }

    #[test]
    fn histogram_bucket_lines_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [1u64, 1, 2, 40] {
            h.record(v);
        }
        let text = render_text(&r);
        assert!(text.contains("h_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("h_sum 44\n"));
    }
}
