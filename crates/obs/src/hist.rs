//! The log-bucketed latency histogram.
//!
//! A fixed-size array of atomic buckets covering the full `u64` range:
//! values below [`LINEAR_MAX`] get one bucket each (exact), and every
//! power-of-two octave above it is split into [`SUB_BUCKETS`] equal-width
//! sub-buckets — the HdrHistogram layout at 4 bits of sub-bucket
//! precision. Recording is one relaxed `fetch_add` per value plus the
//! count/sum/min/max atomics: no locks, no allocation, safe from any
//! number of threads. Memory is fixed at [`BUCKETS`] * 8 bytes (~8 KiB)
//! per histogram regardless of how many values are recorded.
//!
//! The price of fixed memory is bounded relative error: a value lands in
//! a bucket whose width is at most 1/16 of its magnitude, and quantiles
//! report the bucket midpoint, so any reported quantile is within ~3.2 %
//! of the exact order statistic (exact below [`LINEAR_MAX`]). The
//! quantile-error property test in this crate pins that bound.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are bucketed exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 16;

/// Sub-buckets per power-of-two octave above the linear range.
pub const SUB_BUCKETS: usize = 16;

const SUB_BITS: u32 = 4;
const FIRST_OCTAVE: u32 = 4; // values 16..32 live in octave 4 (2^4 = 16)
const OCTAVES: usize = 60; // octaves 4..=63 cover 16..=u64::MAX

/// Total bucket count: the linear range plus every octave's sub-buckets.
pub const BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUB_BUCKETS;

/// Maps a value to its bucket index. Total over all of `u64`.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_MAX {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((value >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
}

/// The inclusive `(low, high)` value range of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < LINEAR_MAX as usize {
        return (index as u64, index as u64);
    }
    let past_linear = index - LINEAR_MAX as usize;
    let octave = (past_linear / SUB_BUCKETS) as u32 + FIRST_OCTAVE;
    let sub = (past_linear % SUB_BUCKETS) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let low = (1u64 << octave) + sub * width;
    (low, low + (width - 1))
}

/// The value a bucket reports for every sample it holds: the midpoint.
fn bucket_midpoint(index: usize) -> u64 {
    let (low, high) = bucket_bounds(index);
    low + (high - low) / 2
}

/// A mergeable, fixed-memory, lock-free latency histogram.
///
/// `record` never blocks and never allocates; `snapshot` reads the
/// buckets without stopping writers (a snapshot taken under concurrent
/// recording is a consistent *set of increments*, not necessarily a
/// point-in-time cut — totals always match what was recorded once
/// writers quiesce).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: one relaxed `fetch_add` per atomic.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds another histogram's current contents into this one.
    pub fn merge(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds a snapshot into this histogram.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (bucket, &n) in self.buckets.iter().zip(snap.counts.iter()) {
            if n != 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        if snap.count != 0 {
            self.min.fetch_min(snap.min, Ordering::Relaxed);
            self.max.fetch_max(snap.max, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every bucket plus the scalar statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Shorthand: the quantile of the current contents.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        self.snapshot().value_at_quantile(q)
    }
}

/// An owned copy of a [`Histogram`]'s state — what quantile extraction,
/// merging across fleets and the text exposition operate on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`HistogramSnapshot::merged`]).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed `[min, max]`. Returns 0 for an empty snapshot.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_midpoint(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 / p95 / p99 / p999, in that order.
    pub fn percentiles(&self) -> [u64; 4] {
        [
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.95),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        ]
    }

    /// Bucket-wise sum of two snapshots (associative and commutative —
    /// the property tests pin this down).
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(other.counts.iter())
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Non-empty buckets as `(inclusive_high_bound, count)` pairs, in
    /// ascending value order — the exposition's bucket lines.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (bucket_bounds(i).1, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_monotone_and_self_consistent() {
        // Every bucket's bounds are ordered, adjacent buckets tile the
        // value line with no gap or overlap, and index(bounds) round-trips.
        let mut previous_high: Option<u64> = None;
        for index in 0..BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert!(low <= high, "bucket {index}: low {low} > high {high}");
            if let Some(prev) = previous_high {
                assert_eq!(low, prev + 1, "gap/overlap before bucket {index}");
            }
            assert_eq!(bucket_index(low), index);
            assert_eq!(bucket_index(high), index);
            let mid = bucket_midpoint(index);
            assert!(low <= mid && mid <= high);
            previous_high = Some(high);
        }
        assert_eq!(previous_high, Some(u64::MAX));
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), LINEAR_MAX);
        for v in 0..LINEAR_MAX {
            let q = (v as f64 + 1.0) / LINEAR_MAX as f64;
            assert_eq!(snap.value_at_quantile(q), v);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 0);
        assert_eq!(snap.value_at_quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn extremes_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), u64::MAX);
        // Bucket resolution: the top quantile lands in MAX's bucket.
        assert!(snap.value_at_quantile(1.0) >= u64::MAX - (u64::MAX >> 5));
    }
}
