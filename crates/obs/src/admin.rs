//! The optional admin TCP listener: scrape metrics and dump spans.
//!
//! A deliberately tiny HTTP/1.0 responder — enough for `curl` and a
//! Prometheus scrape job, nothing more. Two routes:
//!
//! * `GET /metrics` → the deterministic text exposition,
//! * `GET /spans`   → the span ring as JSONL,
//!
//! anything else → 404. One thread, one request per connection, no
//! keep-alive. The listener shares the process's [`Obs`] surface, so a
//! scrape observes exactly what the serving threads record.

use crate::Obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running admin listener. Shuts down (and joins its thread) on
/// [`AdminServer::shutdown`] or drop.
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `obs` until
    /// shut down.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn bind<A: ToSocketAddrs>(obs: Arc<Obs>, addr: A) -> std::io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // One bad peer must not kill the listener.
                        let _ = answer(&obs, stream);
                    }
                }
            })
        };
        Ok(AdminServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves one request on `stream` and closes it.
fn answer(obs: &Obs, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", obs.render_text()),
        "/spans" => ("200 OK", "application/jsonl", obs.spans().to_jsonl()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn metrics_and_spans_are_scrapable() {
        let obs = Obs::new();
        obs.registry().counter("net_shed_total").add(3);
        obs.spans().record(crate::Span::new("DeviceHello"));
        let mut server = AdminServer::bind(Arc::clone(&obs), "127.0.0.1:0").unwrap();
        let metrics = get(server.addr(), "/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"));
        assert!(metrics.contains("net_shed_total 3"));
        let spans = get(server.addr(), "/spans");
        assert!(spans.contains("\"kind\":\"DeviceHello\""));
        let missing = get(server.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
