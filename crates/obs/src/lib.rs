//! # oma-obs — observability primitives for the OMA DRM serving stack
//!
//! The paper this repository reproduces is an *accounting* paper — it
//! answers "where do the cycles go" for DRM terminal crypto. This crate
//! extends that accounting to the serving stack: where does the *time*
//! go, as a distribution, per subsystem.
//!
//! Std-only, no dependencies. Four pieces:
//!
//! * [`Histogram`] — a mergeable log-bucketed latency histogram with
//!   fixed memory (~8 KiB), lock-free concurrent recording and
//!   p50/p95/p99/p999 extraction ([`hist`]),
//! * [`Counter`] / [`Gauge`] — the monotone and up/down scalar
//!   primitives, behind a named [`Registry`],
//! * [`SpanRecorder`] — a bounded non-blocking ring buffer of
//!   per-dispatch [`Span`]s, dumpable as JSONL ([`span`]),
//! * [`render_text`](Obs::render_text) — a deterministic
//!   Prometheus-style text exposition, optionally served by a tiny
//!   admin TCP listener ([`admin`]).
//!
//! The serving crates thread an [`ObsConfig`] through their config
//! structs. [`ObsConfig::Off`] (the default) costs one `Option` check
//! per instrumentation site — recording handles are pre-resolved
//! `Option<Arc<_>>`s, so the off path does no hashing, no locking and
//! no allocation. The bench trajectory gates the on-path overhead at a
//! few percent of fleet throughput (see `crates/bench`).
//!
//! ## Naming scheme
//!
//! Metric names are `<layer>_<what>_<unit>`: `net_frame_nanos`,
//! `store_fsync_nanos`, `repl_ship_ack_nanos`, `fleet_registration_nanos`,
//! counters end in `_total` (`net_shed_total`), gauges are bare nouns
//! (`net_active`, `repl_follower_lag`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod expo;
pub mod hist;
pub mod span;

pub use admin::AdminServer;
pub use hist::{Histogram, HistogramSnapshot};
pub use span::{Span, SpanRecorder};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down scalar (queue depths, active connections, lag, epochs).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` and returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtracts `n` (callers pair this with a prior `add`).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (for peak-watermark gauges).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics: get-or-register by name, rendered
/// deterministically (names are kept sorted) by the text exposition.
///
/// Registration takes a lock and is meant for setup; the returned
/// `Arc` handles are what hot paths hold and hit lock-free.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind —
    /// a programming error, caught loudly.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// When `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("registry lock");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} is already registered with a different kind"),
        }
    }

    /// The histogram named `name` if (and only if) already registered.
    pub fn find_histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        match self.metrics.lock().expect("registry lock").get(name) {
            Some(Metric::Histogram(h)) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// Visits every metric in name order (the exposition's iteration).
    fn for_each(&self, mut visit: impl FnMut(&str, &Metric)) {
        for (name, metric) in self.metrics.lock().expect("registry lock").iter() {
            visit(name, metric);
        }
    }
}

/// The observability surface one process exposes: a [`Registry`] of
/// metrics plus a [`SpanRecorder`] of recent request spans.
pub struct Obs {
    registry: Registry,
    spans: SpanRecorder,
}

/// Default span-ring capacity (spans, not bytes; ~200 B each).
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

impl Obs {
    /// A fresh surface with the default span-ring capacity.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Obs> {
        Obs::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// A fresh surface retaining the most recent `capacity` spans.
    pub fn with_span_capacity(capacity: usize) -> Arc<Obs> {
        Arc::new(Obs {
            registry: Registry::new(),
            spans: SpanRecorder::new(capacity),
        })
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span ring.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// The deterministic Prometheus-style text exposition of every
    /// registered metric. See [`expo`] for the exact format.
    pub fn render_text(&self) -> String {
        expo::render_text(&self.registry)
    }
}

/// Whether (and where) a subsystem records observability data.
///
/// `Off` is the default and costs one branch per site; `On` carries the
/// shared [`Obs`] surface. Clone is cheap (an `Arc` bump).
#[derive(Clone, Default)]
pub enum ObsConfig {
    /// No recording: instrumentation sites compile to an `Option` check.
    #[default]
    Off,
    /// Record into this surface.
    On(Arc<Obs>),
}

impl ObsConfig {
    /// A fresh enabled surface (shorthand for `On(Obs::new())`).
    pub fn enabled() -> ObsConfig {
        ObsConfig::On(Obs::new())
    }

    /// The surface, when on.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        match self {
            ObsConfig::Off => None,
            ObsConfig::On(obs) => Some(obs),
        }
    }

    /// Whether recording is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, ObsConfig::On(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_the_same_handle_per_name() {
        let r = Registry::new();
        let a = r.counter("net_shed_total");
        let b = r.counter("net_shed_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(r.find_histogram("net_shed_total").is_none());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn gauge_tracks_peaks() {
        let g = Gauge::new();
        assert_eq!(g.add(3), 3);
        g.sub(1);
        g.set_max(10);
        g.set_max(5);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn obs_config_off_is_free_to_ask() {
        let off = ObsConfig::default();
        assert!(!off.is_on());
        assert!(off.obs().is_none());
        let on = ObsConfig::enabled();
        assert!(on.is_on());
        on.obs().unwrap().registry().counter("c").inc();
    }
}
