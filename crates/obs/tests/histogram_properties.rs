//! Property and concurrency coverage for the log-bucketed histogram.
//!
//! Three contracts:
//!
//! * merging snapshots is associative and commutative (so per-thread or
//!   per-shard histograms can be folded in any order),
//! * concurrent recording from 8 threads equals the sequential
//!   reference exactly — same count, same sum, same buckets,
//! * every reported quantile is within the documented error bound of
//!   the exact order statistic (exact below the linear range).

use oma_obs::hist::LINEAR_MAX;
use oma_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Spread small generator bytes across the interesting magnitudes: the
/// exact linear range, mid-size bucketed values and huge outliers.
fn widen(raw: &[u8]) -> Vec<u64> {
    raw.iter()
        .enumerate()
        .map(|(i, &b)| match i % 3 {
            0 => b as u64,
            1 => (b as u64) * 1_000,
            _ => (b as u64) * 1_000_000_007,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (a, b) = (hist_of(&widen(&a)), hist_of(&widen(&b)));
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
        c in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (a, b, c) = (hist_of(&widen(&a)), hist_of(&widen(&b)), hist_of(&widen(&c)));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (a, b) = (widen(&a), widen(&b));
        let merged = hist_of(&a).merged(&hist_of(&b));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&both));
    }

    #[test]
    fn empty_snapshot_is_the_merge_identity(
        a in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let a = hist_of(&widen(&a));
        prop_assert_eq!(a.merged(&HistogramSnapshot::empty()), a.clone());
        prop_assert_eq!(HistogramSnapshot::empty().merged(&a), a);
    }

    #[test]
    fn quantiles_stay_within_the_error_bound(
        raw in proptest::collection::vec(any::<u8>(), 1..128),
        q_percent in 0u8..101,
    ) {
        let mut values = widen(&raw);
        let snap = hist_of(&values);
        values.sort_unstable();
        let q = q_percent as f64 / 100.0;
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let reported = snap.value_at_quantile(q);
        if exact < LINEAR_MAX {
            // The linear range is bucketed exactly.
            prop_assert_eq!(reported, exact);
        } else {
            // Bucket width is at most 1/16 of the value's magnitude and
            // quantiles report the clamped midpoint: 1/32 relative
            // error, with a little slack for integer rounding.
            let bound = exact / 16 + 1;
            let distance = reported.abs_diff(exact);
            prop_assert!(
                distance <= bound,
                "q={} exact={} reported={} (off by {}, bound {})",
                q, exact, reported, distance, bound
            );
        }
    }
}

#[test]
fn concurrent_recording_equals_sequential_totals() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let concurrent = Arc::new(Histogram::new());
    let value_of = |t: u64, i: u64| (t * PER_THREAD + i).wrapping_mul(2_654_435_761) % 5_000_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&concurrent);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(value_of(t, i));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let sequential = Histogram::new();
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            sequential.record(value_of(t, i));
        }
    }

    // Not just the same count: the same sum, min, max and every bucket.
    assert_eq!(concurrent.snapshot(), sequential.snapshot());
    assert_eq!(concurrent.count(), THREADS * PER_THREAD);
}

#[test]
fn per_thread_histograms_fold_into_the_global_one() {
    // The fleet pattern: each worker records into its own histogram,
    // the harness merges them. Must equal one shared histogram.
    let shared = Histogram::new();
    let merged = Histogram::new();
    for t in 0..4u64 {
        let local = Histogram::new();
        for i in 0..1_000 {
            let v = (t * 1_000 + i) * 37 % 100_000;
            local.record(v);
            shared.record(v);
        }
        merged.merge(&local);
    }
    assert_eq!(merged.snapshot(), shared.snapshot());
}
